// Forged-event tests for the runtime invariant checker: each test drives
// CheckObserver with a hand-crafted protocol-violating event sequence and
// asserts the named invariant trips (docs/CHECKS.md).
#include "check/invariant_checker.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/config.h"
#include "engine/session_table.h"
#include "storage/versioned_store.h"
#include "tests/test_util.h"

namespace tornado {
namespace {

CheckObserver Recorder(const VersionedStore* store = nullptr) {
  CheckObserver::Options options;
  options.abort_on_violation = false;
  options.store = store;
  return CheckObserver(options);
}

bool Tripped(const CheckObserver& checker, const std::string& invariant) {
  // One snapshot: violations() returns by value, so begin()/end() must
  // come from the same call.
  const std::vector<CheckViolation> violations = checker.violations();
  return std::any_of(violations.begin(), violations.end(),
                     [&](const CheckViolation& v) {
                       return v.invariant == invariant;
                     });
}

TEST(InvariantCheckerTest, CommitBeforeQuorumTrips) {
  CheckObserver checker = Recorder();
  checker.OnLoopCreated(1, 0, 0, /*processor=*/0);
  checker.OnPrepare(1, 0, /*producer=*/5, /*fanout=*/2);
  checker.OnAck(1, 0, /*consumer=*/6, /*producer=*/5, 3);
  // Second ack never arrives; the commit is premature.
  checker.OnCommit(1, 0, 5, /*iteration=*/3, /*tau=*/0, /*horizon=*/4);
  ASSERT_TRUE(Tripped(checker, "INV-QUORUM"));
  EXPECT_EQ(checker.violations()[0].vertex, 5u);
}

TEST(InvariantCheckerTest, FullQuorumIsClean) {
  CheckObserver checker = Recorder();
  checker.OnPrepare(1, 0, 5, 2);
  checker.OnAck(1, 0, 6, 5, 3);
  checker.OnAck(1, 0, 7, 5, 3);
  checker.OnCommit(1, 0, 5, 3, 0, 4);
  EXPECT_TRUE(checker.violations().empty());
  EXPECT_EQ(checker.commits_checked(), 1u);
}

TEST(InvariantCheckerTest, NonMonotoneCommitTrips) {
  CheckObserver checker = Recorder();
  checker.OnCommit(1, 0, 5, 3, 0, 8);
  checker.OnCommit(1, 0, 5, 3, 0, 8);  // iteration did not advance
  EXPECT_TRUE(Tripped(checker, "INV-MONO-COMMIT"));
}

TEST(InvariantCheckerTest, CommitOutsideWindowTrips) {
  CheckObserver checker = Recorder();
  checker.OnCommit(1, 0, 5, /*iteration=*/9, /*tau=*/2, /*horizon=*/6);
  EXPECT_TRUE(Tripped(checker, "INV-WINDOW"));
}

TEST(InvariantCheckerTest, RegressingTerminationWatermarkTrips) {
  CheckObserver checker = Recorder();
  checker.OnTerminated(1, 0, /*processor=*/0, /*new_tau=*/7);
  checker.OnTerminated(1, 0, 0, 5);  // watermark moved backwards
  EXPECT_TRUE(Tripped(checker, "INV-MONO-TAU"));
}

TEST(InvariantCheckerTest, CommitBelowMergeFloorTrips) {
  CheckObserver checker = Recorder();
  checker.OnMergeAdopted(0, 0, /*vertex=*/5, /*merge_iteration=*/10);
  checker.OnCommit(0, 0, 5, /*iteration=*/8, /*tau=*/0, /*horizon=*/12);
  EXPECT_TRUE(Tripped(checker, "INV-MERGE-FLOOR"));
}

TEST(InvariantCheckerTest, CommitAboveMergeFloorIsClean) {
  CheckObserver checker = Recorder();
  checker.OnMergeAdopted(0, 0, 5, 10);
  checker.OnCommit(0, 0, 5, 11, 0, 12);
  EXPECT_TRUE(checker.violations().empty());
}

TEST(InvariantCheckerTest, StoreMissingCommitVersionTrips) {
  VersionedStore store;
  CheckObserver checker = Recorder(&store);
  store.Put(1, 5, /*iteration=*/3, {1, 2, 3});
  checker.OnCommit(1, 0, 5, 3, 0, 8);  // present: clean
  EXPECT_TRUE(checker.violations().empty());
  checker.OnCommit(1, 0, 5, 4, 0, 8);  // never persisted
  EXPECT_TRUE(Tripped(checker, "INV-STORE"));
}

TEST(InvariantCheckerTest, SupersededEpochEventsAreIgnored) {
  CheckObserver checker = Recorder();
  checker.OnPrepare(1, /*epoch=*/0, 5, 2);
  // Rollback: the loop restarts under epoch 1; the old prepare is void.
  checker.OnLoopCreated(1, 1, 0, 0);
  checker.OnCommit(1, 1, 5, 1, 0, 4);         // fresh epoch: clean
  checker.OnCommit(1, /*epoch=*/0, 5, 9, 0, 0);  // stale epoch: ignored
  EXPECT_TRUE(checker.violations().empty());
}

TEST(InvariantCheckerTest, EngineResetClearsExpectations) {
  CheckObserver checker = Recorder();
  checker.OnPrepare(1, 0, 5, 2);
  checker.OnEngineReset(/*processor=*/0);
  // After a restart the vertex may legitimately commit with no round open.
  checker.OnCommit(1, 0, 5, 1, 0, 4);
  EXPECT_TRUE(checker.violations().empty());
}

TEST(InvariantCheckerTest, DeepCheckCatchesCorruptedSessionState) {
  JobConfig config;
  VersionedStore store;
  SessionTable sessions(&config, &store);
  LoopState& ls = sessions.Create(1, 0, 0);

  ls.blocked_count = 3;  // nothing buffered: counter is corrupt
  ls.stalled.insert(42);  // no session for vertex 42

  VertexSession& waiting = ls.vertices[7];
  waiting.id = 7;
  waiting.waiting_list.insert(8);  // waiting but not preparing

  VertexSession& retired = ls.vertices[9];
  retired.id = 9;
  retired.AddTarget(4);
  retired.RemoveTarget(4);  // retiring set left undrained while quiescent

  CheckObserver checker = Recorder();
  checker.DeepCheck(sessions);
  EXPECT_TRUE(Tripped(checker, "INV-BLOCKED-COUNT"));
  EXPECT_TRUE(Tripped(checker, "INV-QUIESCENT"));
  EXPECT_TRUE(Tripped(checker, "INV-RETIRE-DRAIN"));
}

TEST(InvariantCheckerDeathTest, AbortModeDumpsTheInvariantName) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        CheckObserver checker;  // default: abort_on_violation = true
        checker.OnPrepare(1, 0, 5, 2);
        checker.OnCommit(1, 0, 5, 3, 0, 4);
      },
      "invariant: INV-QUORUM");
}

}  // namespace
}  // namespace tornado
