// Validator coverage for the scenario schema (docs/SCENARIOS.md): every
// malformed-fixture class — unknown field, wrong type, out-of-range
// value, dangling node reference — must fail with the exact dotted
// field-path error string, and a valid document must round-trip through
// ScenarioToJson byte-stably.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "scenario/json.h"
#include "scenario/scenario.h"
#include "tests/test_util.h"

namespace tornado {
namespace scenario {
namespace {

std::string Fixture(const std::string& name) {
  return std::string(TORNADO_SCENARIO_FIXTURES) + "/" + name;
}

/// Loads a fixture expected to FAIL validation; returns its error lines.
std::vector<std::string> ErrorsOf(const std::string& name) {
  Scenario scenario;
  std::vector<std::string> errors;
  EXPECT_FALSE(LoadScenarioFile(Fixture(name), &scenario, &errors))
      << name << " unexpectedly validated";
  return errors;
}

bool Contains(const std::vector<std::string>& errors,
              const std::string& want) {
  return std::find(errors.begin(), errors.end(), want) != errors.end();
}

std::string Join(const std::vector<std::string>& errors) {
  std::string out;
  for (const std::string& e : errors) out += "  " + e + "\n";
  return out;
}

TEST(ScenarioValidatorTest, UnknownFieldIsRejectedWithItsPath) {
  const auto errors = ErrorsOf("bad_unknown_field.json");
  EXPECT_TRUE(Contains(errors, "scenario.workload.ratee: unknown field"))
      << Join(errors);
}

TEST(ScenarioValidatorTest, WrongTypeNamesTheExpectedType) {
  const auto errors = ErrorsOf("bad_wrong_type.json");
  EXPECT_TRUE(Contains(errors, "scenario.workload.rate: expected number"))
      << Join(errors);
  EXPECT_TRUE(Contains(errors, "scenario.drive.pause_ingest: "
                               "expected boolean"))
      << Join(errors);
}

TEST(ScenarioValidatorTest, OutOfRangeValuesNameTheBound) {
  const auto errors = ErrorsOf("bad_out_of_range.json");
  EXPECT_TRUE(Contains(errors, "scenario.workload.rate: must be > 0"))
      << Join(errors);
  EXPECT_TRUE(Contains(errors, "scenario.consistency.delay_bound: "
                               "must be in [1, 1000000]"))
      << Join(errors);
}

TEST(ScenarioValidatorTest, DanglingNodeReferenceIsBoundsChecked) {
  const auto errors = ErrorsOf("bad_dangling_node.json");
  EXPECT_TRUE(Contains(
      errors,
      "scenario.timeline[0].node: processor index 12 out of range "
      "(cluster has 8 processors)"))
      << Join(errors);
}

TEST(ScenarioValidatorTest, MissingWorkloadIsRequired) {
  Scenario scenario;
  std::vector<std::string> errors;
  EXPECT_FALSE(ParseScenarioText(R"({"name": "x"})", &scenario, &errors));
  EXPECT_TRUE(Contains(errors, "scenario.workload: missing required field"))
      << Join(errors);
}

TEST(ScenarioValidatorTest, MalformedJsonReportsLineAndColumn) {
  Scenario scenario;
  std::vector<std::string> errors;
  EXPECT_FALSE(ParseScenarioText("{\n  \"name\": }", &scenario, &errors));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("JSON parse error at 2:"), std::string::npos)
      << errors[0];
}

TEST(ScenarioValidatorTest, ValidScenarioRoundTripsByteStably) {
  Scenario scenario;
  std::vector<std::string> errors;
  ASSERT_TRUE(LoadScenarioFile(Fixture("mini_sssp.json"), &scenario, &errors))
      << Join(errors);
  const std::string once = JsonWrite(ScenarioToJson(scenario));

  Scenario reparsed;
  ASSERT_TRUE(ParseScenarioText(once, &reparsed, &errors)) << Join(errors);
  const std::string twice = JsonWrite(ScenarioToJson(reparsed));
  EXPECT_EQ(once, twice);
}

TEST(ScenarioValidatorTest, EveryCorpusScenarioValidates) {
  // The checked-in corpus must stay loadable — the ctest registration
  // runs each file, but this is the fast-feedback version.
  for (const char* name :
       {"mini_sssp.json", "chaos_commit_regression.json"}) {
    Scenario scenario;
    std::vector<std::string> errors;
    EXPECT_TRUE(LoadScenarioFile(Fixture(name), &scenario, &errors))
        << name << ":\n" << Join(errors);
  }
}

}  // namespace
}  // namespace scenario
}  // namespace tornado
