// Unit tests for the simulated transport: ordered reliable delivery,
// dedup, retransmission into dead nodes, failure/recovery semantics,
// service-queue cost accounting, NIC saturation.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.h"
#include "sim/event_loop.h"
#include "tests/test_util.h"

namespace tornado {
namespace {

struct TestPayload : Payload {
  explicit TestPayload(int v) : value(v) {}
  int value;
  const char* name() const override { return "Test"; }
};

/// Records everything it receives.
class SinkNode : public Node {
 public:
  void OnMessage(NodeId src, const Payload& msg) override {
    received.emplace_back(src, static_cast<const TestPayload&>(msg).value);
    if (extra_cost > 0.0) AddCost(extra_cost);
  }
  void OnRestart() override { ++restarts; }

  std::vector<std::pair<NodeId, int>> received;
  double extra_cost = 0.0;
  int restarts = 0;
};

class NetworkTest : public ::testing::Test {
 protected:
  void Init(int nodes, int hosts, CostModel cost = CostModel()) {
    network = std::make_unique<Network>(&loop, cost, /*seed=*/5);
    for (int i = 0; i < nodes; ++i) {
      auto node = std::make_unique<SinkNode>();
      network->RegisterNode(node.get(), i % hosts);
      sinks.push_back(std::move(node));
    }
  }

  void Send(NodeId from, NodeId to, int value, bool reliable = true) {
    network->Send(from, to, std::make_shared<TestPayload>(value), reliable);
  }

  EventLoop loop;
  std::unique_ptr<Network> network;
  std::vector<std::unique_ptr<SinkNode>> sinks;
};

TEST_F(NetworkTest, DeliversMessages) {
  Init(2, 2);
  Send(0, 1, 42);
  loop.Run();
  ASSERT_EQ(sinks[1]->received.size(), 1u);
  EXPECT_EQ(sinks[1]->received[0], (std::pair<NodeId, int>{0, 42}));
}

TEST_F(NetworkTest, ReliableChannelPreservesSendOrder) {
  // Latency jitter would reorder datagrams; the reliable channel must not.
  CostModel cost;
  cost.net_jitter = 0.9;  // heavy jitter
  Init(2, 2, cost);
  for (int i = 0; i < 200; ++i) Send(0, 1, i);
  loop.Run();
  ASSERT_EQ(sinks[1]->received.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(sinks[1]->received[i].second, i);
}

TEST_F(NetworkTest, InterleavedChannelsEachStayOrdered) {
  Init(3, 3);
  for (int i = 0; i < 50; ++i) {
    Send(0, 2, i);
    Send(1, 2, 1000 + i);
  }
  loop.Run();
  ASSERT_EQ(sinks[2]->received.size(), 100u);
  int last0 = -1, last1 = 999;
  for (const auto& [src, value] : sinks[2]->received) {
    if (src == 0) {
      EXPECT_GT(value, last0);
      last0 = value;
    } else {
      EXPECT_GT(value, last1);
      last1 = value;
    }
  }
}

TEST_F(NetworkTest, MessagesToDeadNodesAreRetransmittedUntilRecovery) {
  Init(2, 2);
  network->KillNode(1);
  Send(0, 1, 7);
  loop.RunUntil(0.4);  // ack timeout is 0.25s: at least one retransmission
  EXPECT_TRUE(sinks[1]->received.empty());
  network->RecoverNode(1);
  loop.Run();
  ASSERT_EQ(sinks[1]->received.size(), 1u);
  EXPECT_EQ(sinks[1]->received[0].second, 7);
  EXPECT_GT(network->metrics().Get(metric::kMessagesRetransmitted), 0);
}

TEST_F(NetworkTest, DeadSenderDoesNotSend) {
  Init(2, 2);
  network->KillNode(0);
  Send(0, 1, 9);
  loop.Run();
  EXPECT_TRUE(sinks[1]->received.empty());
}

TEST_F(NetworkTest, RecoveryCallsOnRestartBeforeNewDeliveries) {
  Init(2, 2);
  network->KillNode(1);
  loop.RunUntil(0.1);
  network->RecoverNode(1);
  Send(0, 1, 5);
  loop.Run();
  EXPECT_EQ(sinks[1]->restarts, 1);
  ASSERT_EQ(sinks[1]->received.size(), 1u);
}

TEST_F(NetworkTest, NoDuplicateDeliveriesUnderRetransmission) {
  // Force retransmissions by keeping the receiver dead briefly; after
  // recovery every message must arrive exactly once, in order.
  Init(2, 2);
  for (int i = 0; i < 10; ++i) Send(0, 1, i);
  loop.RunUntil(0.01);
  network->KillNode(1);
  network->RecoverNode(1);  // channel state reset; retransmits re-deliver
  loop.Run();
  // Exactly-once within an incarnation: values 0..9 at most once each and
  // in order (some may be lost to the crash — the engine's rollback covers
  // that; here we assert no duplicates and order preservation).
  int last = -1;
  for (const auto& [src, value] : sinks[1]->received) {
    EXPECT_GT(value, last);
    last = value;
  }
}

TEST_F(NetworkTest, HandlerCostSerializesProcessing) {
  CostModel cost;
  Init(2, 2, cost);
  sinks[1]->extra_cost = 0.05;
  for (int i = 0; i < 4; ++i) Send(0, 1, i);
  loop.Run();
  // 4 messages, each costing ~0.05s of service: the virtual clock must
  // reflect the serialized handling (>= 3 * 0.05 after the first starts).
  EXPECT_GE(loop.now(), 0.15);
  EXPECT_EQ(sinks[1]->received.size(), 4u);
}

TEST_F(NetworkTest, ScheduleOnNodeRespectsIncarnation) {
  Init(2, 2);
  bool fired = false;
  network->ScheduleOnNode(1, 0.2, [&]() { fired = true; });
  network->KillNode(1);
  network->RecoverNode(1);
  loop.Run();
  EXPECT_FALSE(fired) << "timer from a previous incarnation must not fire";
}

TEST_F(NetworkTest, LocalMessagesSkipTheNic) {
  // Two nodes on one host exchange messages with tiny latency.
  Init(2, 1);
  Send(0, 1, 1);
  loop.Run();
  EXPECT_LT(loop.now(), 1e-3);
}

TEST_F(NetworkTest, SharedNicSerializesCrossHostTraffic) {
  // Many senders on one host: aggregate egress is capped by the NIC wire
  // time, so the last delivery lands no earlier than N * wire_time.
  CostModel cost;
  cost.nic_wire_time = 1e-4;
  Init(3, 2, cost);  // nodes 0,2 on host 0; node 1 on host 1
  constexpr int kN = 100;
  for (int i = 0; i < kN; ++i) Send(0, 1, i);
  loop.Run();
  EXPECT_GE(loop.now(), kN * cost.nic_wire_time);
  EXPECT_EQ(sinks[1]->received.size(), static_cast<size_t>(kN));
}

TEST_F(NetworkTest, MetricsCountTraffic) {
  Init(2, 2);
  for (int i = 0; i < 5; ++i) Send(0, 1, i);
  loop.Run();
  EXPECT_EQ(network->metrics().Get(metric::kMessagesSent), 5);
  EXPECT_EQ(network->metrics().Get(metric::kMessagesDelivered), 5);
}


TEST_F(NetworkTest, BurstCoalescesAcksAndFiresFewerEventsPerMessage) {
  // Steady-state event cost per delivered reliable message. The old
  // transport fired at least four events per message on a cross-host burst
  // (egress NIC hop, ingress NIC hop, one transport ack per message, plus
  // ~one service-queue pump); cumulative acks fold the per-message ack
  // events away, so the burst must land strictly below that bound.
  Init(2, 2);
  constexpr int kN = 200;
  for (int i = 0; i < kN; ++i) Send(0, 1, i);
  const uint64_t fired = loop.Run();

  ASSERT_EQ(sinks[1]->received.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i) EXPECT_EQ(sinks[1]->received[i].second, i);
  EXPECT_EQ(network->metrics().Get(metric::kMessagesDelivered), kN);
  EXPECT_EQ(network->metrics().Get(metric::kMessagesRetransmitted), 0);

  EXPECT_LT(fired, static_cast<uint64_t>(3.5 * kN))
      << "per-message-ack transports cannot go below 4 events/message";
  // Arrivals spaced one NIC wire time apart share acks that travel one
  // network latency: coalescing must collapse them well below one ack per
  // message (each ack covers ~net_latency / nic_wire_time arrivals).
  const int64_t acks = network->metrics().Get(metric::kTransportAcks);
  EXPECT_GT(acks, 0);
  EXPECT_LT(acks, kN / 2);
}

}  // namespace
}  // namespace tornado
