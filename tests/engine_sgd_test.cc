// End-to-end SGD (SVM and logistic regression) on the Tornado engine: the
// main loop's model must track the generating hyperplane, branch loops must
// reduce the objective below the main loop's, and the bold driver must
// adapt the descent rate.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "algos/sgd.h"
#include "core/cluster.h"
#include "stream/instance_stream.h"
#include "tests/test_util.h"

namespace tornado {
namespace {

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

std::vector<SgdInstance> CollectInstances(const InstanceStreamOptions& opts) {
  InstanceStream replay(opts);
  std::vector<SgdInstance> out;
  while (auto tuple = replay.Next()) {
    const auto& d = std::get<InstanceDelta>(tuple->delta);
    SgdInstance inst;
    inst.id = d.id;
    inst.label = d.label;
    inst.features = d.features;
    out.push_back(std::move(inst));
  }
  return out;
}

struct SgdCase {
  SgdLoss loss;
  bool sparse;
  const char* name;
};

class SgdEngineTest : public ::testing::TestWithParam<SgdCase> {};

TEST_P(SgdEngineTest, MainLoopTracksTruthAndBranchImprovesObjective) {
  const SgdCase& param = GetParam();

  InstanceStreamOptions stream_options;
  stream_options.dimensions = param.sparse ? 60 : 12;
  stream_options.num_tuples = 8000;
  stream_options.sparse = param.sparse;
  stream_options.sparsity_nnz = 12;
  stream_options.label_noise = 0.02;
  stream_options.seed = 31;

  SgdOptions sgd;
  sgd.loss = param.loss;
  sgd.num_shards = 4;
  sgd.dimensions = stream_options.dimensions;
  sgd.sample_ratio = 0.05;
  sgd.reservoir_capacity = 500;
  sgd.descent_rate = param.loss == SgdLoss::kSvmHinge ? 0.05 : 0.2;
  sgd.emit_tolerance = 1e-4;

  JobConfig config;
  config.program = std::make_shared<SgdProgram>(sgd);
  config.router = SgdProgram::MakeRouter(sgd);
  config.delay_bound = 64;
  config.num_processors = 4;
  config.num_hosts = 2;
  config.convergence.quiescence = true;
  config.convergence.epsilon = 1e-5;
  config.convergence.window = 4;
  config.convergence.max_iterations = 4000;
  config.ingest_rate = 50000.0;

  TornadoCluster cluster(config,
                         std::make_unique<InstanceStream>(stream_options));
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilEmitted(stream_options.num_tuples, 600.0));
  cluster.RunFor(5.0);  // let the main loop keep adapting
  cluster.ingester().Pause();

  InstanceStream truth(stream_options);
  const auto instances = CollectInstances(stream_options);

  // Main-loop model should point in the direction of the ground truth.
  auto main_state = cluster.ReadVertexState(kMainLoop, kSgdParamVertex);
  ASSERT_NE(main_state, nullptr);
  const auto& main_param = static_cast<const SgdParamState&>(*main_state);
  const double main_cos =
      CosineSimilarity(main_param.weights, truth.true_weights());
  EXPECT_GT(main_cos, 0.75) << "main-loop model does not track the truth";
  const double main_objective = SgdProgram::Objective(
      sgd.loss, sgd.regularization, main_param.weights, instances);

  // A branch loop polishes the model to (near) the empirical optimum.
  const uint64_t query = cluster.ingester().SubmitQuery();
  ASSERT_TRUE(cluster.RunUntilQueryDone(query, 2000.0));
  auto branch_state =
      cluster.ReadVertexState(cluster.BranchOf(query), kSgdParamVertex);
  ASSERT_NE(branch_state, nullptr);
  const auto& branch_param = static_cast<const SgdParamState&>(*branch_state);
  const double branch_objective = SgdProgram::Objective(
      sgd.loss, sgd.regularization, branch_param.weights, instances);

  EXPECT_LE(branch_objective, main_objective * 1.05)
      << "branch loop made the objective worse";
  const double branch_cos =
      CosineSimilarity(branch_param.weights, truth.true_weights());
  EXPECT_GT(branch_cos, main_cos - 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Losses, SgdEngineTest,
    ::testing::Values(SgdCase{SgdLoss::kSvmHinge, false, "svm"},
                      SgdCase{SgdLoss::kLogistic, true, "lr"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(SgdBoldDriverTest, RateAdaptsOverTime) {
  InstanceStreamOptions stream_options;
  stream_options.dimensions = 12;
  stream_options.num_tuples = 6000;
  stream_options.concept_drift = 0.002;
  stream_options.seed = 77;

  SgdOptions sgd;
  sgd.loss = SgdLoss::kSvmHinge;
  sgd.num_shards = 4;
  sgd.dimensions = 12;
  sgd.schedule = DescentSchedule::kBoldDriver;
  sgd.descent_rate = 0.5;

  JobConfig config;
  config.program = std::make_shared<SgdProgram>(sgd);
  config.router = SgdProgram::MakeRouter(sgd);
  config.delay_bound = 64;
  config.num_processors = 2;
  config.num_hosts = 1;
  config.ingest_rate = 50000.0;

  TornadoCluster cluster(config,
                         std::make_unique<InstanceStream>(stream_options));
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilEmitted(stream_options.num_tuples, 600.0));
  cluster.RunFor(3.0);

  auto state = cluster.ReadVertexState(kMainLoop, kSgdParamVertex);
  ASSERT_NE(state, nullptr);
  const auto& param = static_cast<const SgdParamState&>(*state);
  EXPECT_NE(param.rate, 0.5) << "bold driver never adjusted the rate";
  EXPECT_GE(param.rate, sgd.min_rate);
  EXPECT_LE(param.rate, sgd.max_rate);
  EXPECT_GT(param.steps, 100u);
}

}  // namespace
}  // namespace tornado
