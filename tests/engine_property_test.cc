// Property-style end-to-end sweeps: for random seeds, delay bounds and
// query instants, Tornado's branch results must equal the Dijkstra
// reference on exactly the emitted prefix; the terminated watermark must
// be monotone; store garbage collection must keep version counts bounded.

#include <gtest/gtest.h>

#include <memory>

#include "algos/sssp.h"
#include "core/cluster.h"
#include "graph/dynamic_graph.h"
#include "stream/graph_stream.h"
#include "tests/test_util.h"

namespace tornado {
namespace {

struct PropertyCase {
  uint64_t seed;
  uint64_t delay_bound;
};

class SsspPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(SsspPropertyTest, RandomisedRunMatchesReferenceAtEveryQuery) {
  const PropertyCase& param = GetParam();
  Rng driver_rng(param.seed * 7919);

  GraphStreamOptions options;
  options.num_vertices = 150 + driver_rng.NextUint64(150);
  options.num_tuples = 1200 + driver_rng.NextUint64(1200);
  options.deletion_ratio = driver_rng.NextDouble(0.0, 0.12);
  options.source_hub_weight = 8;
  options.seed = param.seed;

  JobConfig config;
  config.program = std::make_shared<SsspProgram>(0);
  config.delay_bound = param.delay_bound;
  config.num_processors = 2 + static_cast<uint32_t>(driver_rng.NextUint64(5));
  config.num_hosts = 2;
  config.ingest_rate = 30000.0 + driver_rng.NextDouble(0.0, 80000.0);
  config.seed = param.seed + 1;

  TornadoCluster cluster(config, std::make_unique<GraphStream>(options));
  cluster.Start();

  Iteration last_watermark = 0;
  const int queries = 3;
  for (int q = 0; q < queries; ++q) {
    const uint64_t target =
        options.num_tuples * (q + 1) / queries;
    ASSERT_TRUE(cluster.RunUntilEmitted(target, 600.0));
    cluster.ingester().Pause();
    cluster.RunFor(2.0);

    // Watermark monotonicity.
    const Iteration watermark = cluster.master().LastTerminated(kMainLoop);
    if (watermark != kNoIteration) {
      EXPECT_GE(watermark, last_watermark);
      last_watermark = watermark;
    }

    const uint64_t query = cluster.ingester().SubmitQuery();
    ASSERT_TRUE(cluster.RunUntilQueryDone(query, 600.0))
        << "query " << q << " stuck (seed " << param.seed << ")";
    const LoopId branch = cluster.BranchOf(query);

    // Reference on exactly the emitted prefix.
    GraphStream replay(options);
    DynamicGraph graph;
    for (uint64_t i = 0; i < cluster.ingester().emitted(); ++i) {
      auto tuple = replay.Next();
      if (!tuple.has_value()) break;
      graph.Apply(std::get<EdgeDelta>(tuple->delta));
    }
    const auto expected = graph.ShortestPaths(0);
    for (VertexId v : graph.Vertices()) {
      auto state = cluster.ReadVertexState(branch, v);
      const double got =
          state == nullptr ? kSsspInfinity
                           : static_cast<const SsspState&>(*state).length;
      auto it = expected.find(v);
      const double want = it == expected.end() ? kSsspInfinity : it->second;
      if (want == kSsspInfinity) {
        ASSERT_EQ(got, kSsspInfinity)
            << "seed " << param.seed << " query " << q << " vertex " << v;
      } else {
        ASSERT_NEAR(got, want, 1e-9)
            << "seed " << param.seed << " query " << q << " vertex " << v;
      }
    }
    cluster.ingester().Resume();
  }

  // Store GC: history below the terminated watermark is pruned, so total
  // versions stay within a small multiple of the live state
  // (vertices x loops), not the full update history.
  const size_t versions = cluster.store().TotalVersions();
  const size_t vertices = cluster.store().VerticesOf(kMainLoop).size();
  EXPECT_LT(versions, (queries + 2) * (vertices + 16) * 4)
      << "version history is not being garbage-collected";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SsspPropertyTest,
    ::testing::Values(PropertyCase{1, 1}, PropertyCase{2, 2},
                      PropertyCase{3, 8}, PropertyCase{4, 64},
                      PropertyCase{5, 1024}, PropertyCase{6, 65536},
                      PropertyCase{7, 3}, PropertyCase{8, 16}),
    [](const auto& info) {
      return "Seed" + std::to_string(info.param.seed) + "B" +
             std::to_string(info.param.delay_bound);
    });

}  // namespace
}  // namespace tornado
