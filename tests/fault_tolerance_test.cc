// Failure-injection tests (Section 5.3): processors and the master are
// killed mid-branch-loop and recovered; the computation must roll back to
// the last terminated iteration, resume, and still produce the exact
// fixed point.

#include <gtest/gtest.h>

#include <memory>

#include "algos/sssp.h"
#include "core/cluster.h"
#include "graph/dynamic_graph.h"
#include "stream/graph_stream.h"
#include "tests/test_util.h"

namespace tornado {
namespace {

constexpr VertexId kSource = 0;

GraphStreamOptions TestGraph() {
  GraphStreamOptions options;
  options.num_vertices = 400;
  options.num_tuples = 3000;
  options.deletion_ratio = 0.03;
  options.seed = 23;
  return options;
}

JobConfig MakeConfig(uint64_t delay_bound) {
  JobConfig config;
  // batch_mode: the main loop only stores edges, so the branch loop does
  // the full computation — giving the failure something to interrupt.
  config.program =
      std::make_shared<SsspProgram>(kSource, /*batch_mode=*/true);
  config.delay_bound = delay_bound;
  config.num_processors = 4;
  config.num_hosts = 2;
  config.ingest_rate = 200000.0;
  config.seed = 55;
  return config;
}

void ExpectCorrect(const TornadoCluster& cluster, LoopId branch,
                   const GraphStreamOptions& options) {
  GraphStream replay(options);
  DynamicGraph graph;
  while (auto tuple = replay.Next()) {
    graph.Apply(std::get<EdgeDelta>(tuple->delta));
  }
  const auto expected = graph.ShortestPaths(kSource);
  size_t finite = 0;
  for (VertexId v : graph.Vertices()) {
    auto state = cluster.ReadVertexState(branch, v);
    const auto it = expected.find(v);
    const double want = it == expected.end() ? kSsspInfinity : it->second;
    const double got =
        state == nullptr ? kSsspInfinity
                         : static_cast<const SsspState&>(*state).length;
    if (want == kSsspInfinity) {
      EXPECT_EQ(got, kSsspInfinity) << "vertex " << v;
    } else {
      EXPECT_NEAR(got, want, 1e-9) << "vertex " << v;
      ++finite;
    }
  }
  EXPECT_GT(finite, 10u);
}

class ProcessorFailureTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProcessorFailureTest, BranchSurvivesProcessorCrash) {
  const GraphStreamOptions options = TestGraph();
  JobConfig config = MakeConfig(GetParam());
  TornadoCluster cluster(config, std::make_unique<GraphStream>(options));
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilEmitted(options.num_tuples, 600.0));
  cluster.ingester().Pause();
  cluster.RunFor(1.0);

  const uint64_t query = cluster.ingester().SubmitQuery();
  // Crash a worker shortly after the branch starts; recover 0.5s later.
  const double t0 = cluster.now();
  cluster.failures().CrashFor(cluster.processor_node(1), t0 + 0.05, 0.5);

  ASSERT_TRUE(cluster.RunUntilQueryDone(query, 3000.0))
      << "query never completed after processor crash";
  ExpectCorrect(cluster, cluster.BranchOf(query), options);
}

INSTANTIATE_TEST_SUITE_P(DelayBounds, ProcessorFailureTest,
                         ::testing::Values(1, 256, 65536),
                         [](const auto& info) {
                           return "B" + std::to_string(info.param);
                         });

class MasterFailureTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MasterFailureTest, BranchSurvivesMasterCrash) {
  const GraphStreamOptions options = TestGraph();
  JobConfig config = MakeConfig(GetParam());
  TornadoCluster cluster(config, std::make_unique<GraphStream>(options));
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilEmitted(options.num_tuples, 600.0));
  cluster.ingester().Pause();
  cluster.RunFor(1.0);

  const uint64_t query = cluster.ingester().SubmitQuery();
  const double t0 = cluster.now();
  cluster.failures().CrashFor(cluster.master_node(), t0 + 0.05, 0.5);

  ASSERT_TRUE(cluster.RunUntilQueryDone(query, 3000.0))
      << "query never completed after master crash";
  ExpectCorrect(cluster, cluster.BranchOf(query), options);
}

INSTANTIATE_TEST_SUITE_P(DelayBounds, MasterFailureTest,
                         ::testing::Values(1, 65536),
                         [](const auto& info) {
                           return "B" + std::to_string(info.param);
                         });

TEST(FailureSemanticsTest, AsyncLoopKeepsCommittingDuringMasterDowntime) {
  // Figure 8c: with a huge delay bound the loop does not depend on
  // termination notifications, so a master failure does not stall it.
  const GraphStreamOptions options = TestGraph();
  JobConfig config = MakeConfig(/*delay_bound=*/1 << 20);
  TornadoCluster cluster(config, std::make_unique<GraphStream>(options));
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilEmitted(options.num_tuples, 600.0));
  cluster.ingester().Pause();
  cluster.RunFor(1.0);

  const uint64_t query = cluster.ingester().SubmitQuery();
  (void)query;
  cluster.RunFor(0.05);  // branch warm-up
  cluster.transport().KillNode(cluster.master_node());

  const int64_t before =
      cluster.metrics().Get(metric::kUpdatesCommitted);
  cluster.RunFor(0.5);
  const int64_t during =
      cluster.metrics().Get(metric::kUpdatesCommitted);
  EXPECT_GT(during, before)
      << "async branch loop stalled while the master was down";
}

TEST(FailureSemanticsTest, SyncLoopStallsDuringMasterDowntime) {
  // Figure 8c, synchronous counterpart: B = 1 depends on termination
  // notifications, so the loop stops almost immediately.
  const GraphStreamOptions options = TestGraph();
  JobConfig config = MakeConfig(/*delay_bound=*/1);
  TornadoCluster cluster(config, std::make_unique<GraphStream>(options));
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilEmitted(options.num_tuples, 600.0));
  cluster.ingester().Pause();
  cluster.RunFor(1.0);

  const uint64_t query = cluster.ingester().SubmitQuery();
  (void)query;
  cluster.RunFor(0.2);  // let a few synchronous iterations run
  cluster.transport().KillNode(cluster.master_node());
  cluster.RunFor(0.3);  // in-flight work drains, then everything blocks

  const int64_t stalled_at =
      cluster.metrics().Get(metric::kUpdatesCommitted);
  cluster.RunFor(0.5);
  const int64_t later =
      cluster.metrics().Get(metric::kUpdatesCommitted);
  EXPECT_EQ(later, stalled_at)
      << "synchronous loop kept committing without a master";
}

}  // namespace
}  // namespace tornado
