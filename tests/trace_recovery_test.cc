// End-to-end failure tracing: kill and recover a processor under an
// enabled trace, then extract the recovery gap from the exported Chrome
// trace JSON exactly the way tools/trace_report does. This is the
// acceptance path for the fig 8d trace artifact.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "algos/sssp.h"
#include "core/cluster.h"
#include "stream/graph_stream.h"
#include "trace/report.h"
#include "trace/trace_recorder.h"

namespace tornado {
namespace {

JobConfig MakeConfig() {
  JobConfig config;
  config.program = std::make_shared<SsspProgram>(0);
  config.delay_bound = 8;
  config.num_processors = 4;
  config.num_hosts = 2;
  config.ingest_rate = 100000.0;
  config.ingest_batch = 10;
  config.seed = 31;
  return config;
}

GraphStreamOptions MakeStream() {
  GraphStreamOptions options;
  options.num_vertices = 150;
  options.num_tuples = 2000;
  options.seed = 5;
  return options;
}

TEST(TraceRecoveryTest, ReportExtractsAPositiveRecoveryGap) {
  TornadoCluster cluster(MakeConfig(),
                         std::make_unique<GraphStream>(MakeStream()));
  cluster.EnableTracing();
  cluster.Start();
  // Warm up past the first terminated iterations so the recovery has
  // store state to roll back to (a kill before any termination drops the
  // whole loop, and with the stream exhausted nothing would recompute).
  ASSERT_TRUE(cluster.RunUntilEmitted(2000, 600.0));
  cluster.RunFor(1.0);

  const NodeId victim = cluster.processor_node(1);
  cluster.transport().KillNode(victim);
  cluster.failures().RecoverAt(victim, cluster.now() + 0.4);
  cluster.RunFor(1.5);  // recovery rollback + enough time to commit again

  std::ostringstream os;
  cluster.trace()->WriteChromeTrace(os);
  const std::string json = os.str();

  // Perfetto-loadable shape: the envelope plus per-line events.
  ASSERT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  ASSERT_EQ(json.substr(json.size() - 3), "]}\n");

  std::istringstream in(json);
  const TraceSummary summary = SummarizeChromeTrace(in);
  EXPECT_GT(summary.total_events, 0u);
  EXPECT_EQ(summary.instants.count("node_killed"), 1u);
  EXPECT_GT(summary.instants.count("recovery_rollback"), 0u);

  ASSERT_EQ(summary.recoveries.size(), 1u);
  const TraceSummary::RecoveryEvent& ev = summary.recoveries[0];
  EXPECT_EQ(ev.node, victim);
  ASSERT_TRUE(ev.complete());
  EXPECT_GT(ev.gap_seconds(), 0.0);
  EXPECT_GE(ev.recovered_ts, ev.killed_ts);

  // The human-readable report names the gap.
  const std::string report = FormatSummary(summary, 5);
  EXPECT_NE(report.find("recovery gaps"), std::string::npos);
  EXPECT_NE(report.find("first post-recovery commit"), std::string::npos);
}

}  // namespace
}  // namespace tornado
