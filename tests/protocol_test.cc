// Protocol-level integration tests: branch merging (Section 5.2),
// concurrent branch loops, delay-bound blocking, master-journal recovery,
// convergence caps, retraction chains, and snapshot isolation.

#include <gtest/gtest.h>

#include <memory>

#include "algos/sssp.h"
#include "core/cluster.h"
#include "stream/graph_stream.h"
#include "stream/vector_stream.h"
#include "tests/test_util.h"

namespace tornado {
namespace {

constexpr VertexId kSource = 0;

JobConfig BaseConfig(uint64_t bound = 16) {
  JobConfig config;
  config.program = std::make_shared<SsspProgram>(kSource);
  config.delay_bound = bound;
  config.num_processors = 4;
  config.num_hosts = 2;
  config.ingest_rate = 50000.0;
  config.seed = 2;
  return config;
}

double LengthOf(const TornadoCluster& cluster, LoopId loop, VertexId v) {
  auto state = cluster.ReadVertexState(loop, v);
  return state == nullptr ? kSsspInfinity
                          : static_cast<const SsspState&>(*state).length;
}

TEST(MergeBackTest, BranchResultsMergeIntoMainLoop) {
  // batch_mode: the main loop never propagates, so main-loop state can
  // only become correct through the merge of branch results.
  JobConfig config = BaseConfig();
  config.program = std::make_shared<SsspProgram>(kSource, /*batch=*/true);
  config.merge_branches = true;

  std::vector<Delta> deltas = {
      EdgeDelta{0, 1, 2.0, true},
      EdgeDelta{1, 2, 3.0, true},
      EdgeDelta{2, 3, 4.0, true},
  };
  TornadoCluster cluster(config, std::make_unique<VectorStream>(deltas));
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilEmitted(3, 60.0));
  cluster.RunFor(1.0);

  const uint64_t query = cluster.ingester().SubmitQuery();
  ASSERT_TRUE(cluster.RunUntilQueryDone(query, 300.0));
  EXPECT_NEAR(LengthOf(cluster, cluster.BranchOf(query), 3), 9.0, 1e-9);
  ASSERT_TRUE(cluster.master().queries().front().done);
  EXPECT_TRUE(cluster.master().queries().front().merged);

  // After the merge settles, the MAIN loop's stored state holds the
  // branch's fixed point.
  cluster.RunFor(1.0);
  EXPECT_NEAR(LengthOf(cluster, kMainLoop, 3), 9.0, 1e-9);
}

TEST(ConcurrentBranchesTest, OverlappingQueriesAreIndependent) {
  GraphStreamOptions options;
  options.num_vertices = 300;
  options.num_tuples = 3000;
  options.deletion_ratio = 0.05;
  options.source_hub_weight = 10;
  options.seed = 12;

  TornadoCluster cluster(BaseConfig(64),
                         std::make_unique<GraphStream>(options));
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilEmitted(1500, 600.0));

  // Fire two queries back-to-back without waiting: two branch loops run
  // concurrently ("the computation of different branch loops are
  // independent of each other").
  const uint64_t q1 = cluster.ingester().SubmitQuery();
  cluster.RunFor(0.01);
  const uint64_t q2 = cluster.ingester().SubmitQuery();
  ASSERT_TRUE(cluster.RunUntilQueryDone(q1, 600.0));
  ASSERT_TRUE(cluster.RunUntilQueryDone(q2, 600.0));
  EXPECT_NE(cluster.BranchOf(q1), cluster.BranchOf(q2));
  EXPECT_GT(cluster.QueryLatency(q1), 0.0);
  EXPECT_GT(cluster.QueryLatency(q2), 0.0);
}

TEST(DelayBoundTest, SmallBoundsBlockUpdates) {
  GraphStreamOptions options;
  options.num_vertices = 400;
  options.num_tuples = 4000;
  options.source_hub_weight = 10;
  options.seed = 4;

  TornadoCluster cluster(BaseConfig(/*bound=*/2),
                         std::make_unique<GraphStream>(options));
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilEmitted(4000, 600.0));
  EXPECT_GT(cluster.metrics().Get(metric::kUpdatesBlocked), 0)
      << "a tight delay bound must actually block update propagation";
}

TEST(MasterJournalTest, MainLoopSurvivesMasterCrashAndKeepsTerminating) {
  GraphStreamOptions options;
  options.num_vertices = 300;
  options.num_tuples = 6000;
  options.source_hub_weight = 10;
  options.seed = 6;

  TornadoCluster cluster(BaseConfig(64),
                         std::make_unique<GraphStream>(options));
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilEmitted(2000, 600.0));
  const Iteration before = cluster.master().LastTerminated(kMainLoop);

  cluster.transport().KillNode(cluster.master_node());
  cluster.RunFor(0.3);
  cluster.transport().RecoverNode(cluster.master_node());

  ASSERT_TRUE(cluster.RunUntilEmitted(6000, 600.0));
  cluster.RunFor(2.0);
  const Iteration after = cluster.master().LastTerminated(kMainLoop);
  ASSERT_NE(after, kNoIteration);
  // The journal preserved the watermark; termination resumed past it.
  if (before != kNoIteration) {
    EXPECT_GE(after, before) << "terminated watermark went backwards";
  }
  EXPECT_GT(after, 0u);

  // And queries still work end to end after the recovery.
  cluster.ingester().Pause();
  cluster.RunFor(1.0);
  const uint64_t query = cluster.ingester().SubmitQuery();
  EXPECT_TRUE(cluster.RunUntilQueryDone(query, 600.0));
}

TEST(ConvergencePolicyTest, MaxIterationsCapsRunawayLoops) {
  JobConfig config = BaseConfig(64);
  config.convergence.quiescence = false;  // nothing else would stop it
  config.convergence.max_iterations = 5;

  GraphStreamOptions options;
  options.num_vertices = 200;
  options.num_tuples = 2000;
  options.source_hub_weight = 10;
  options.seed = 8;
  TornadoCluster cluster(config, std::make_unique<GraphStream>(options));
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilEmitted(2000, 600.0));
  cluster.RunFor(1.0);

  const uint64_t query = cluster.ingester().SubmitQuery();
  ASSERT_TRUE(cluster.RunUntilQueryDone(query, 600.0));
  EXPECT_LE(cluster.master().queries().front().converged_iteration, 6u);
}

TEST(RetractionTest, DeletedEdgeRetractsDownstreamDistances) {
  // Scripted scenario: 0 -> 1 -> 2 plus a long detour 0 -> 3 -> 2; after
  // deleting 1 -> 2 the distance of 2 must increase to the detour.
  std::vector<Delta> deltas = {
      EdgeDelta{0, 1, 1.0, true},  EdgeDelta{1, 2, 1.0, true},
      EdgeDelta{0, 3, 5.0, true},  EdgeDelta{3, 2, 5.0, true},
      EdgeDelta{1, 2, 1.0, false},  // retraction
  };
  TornadoCluster cluster(BaseConfig(16),
                         std::make_unique<VectorStream>(deltas));
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilEmitted(5, 60.0));
  cluster.RunFor(1.0);

  const uint64_t query = cluster.ingester().SubmitQuery();
  ASSERT_TRUE(cluster.RunUntilQueryDone(query, 300.0));
  const LoopId branch = cluster.BranchOf(query);
  EXPECT_NEAR(LengthOf(cluster, branch, 1), 1.0, 1e-9);
  EXPECT_NEAR(LengthOf(cluster, branch, 2), 10.0, 1e-9);  // via the detour
  EXPECT_NEAR(LengthOf(cluster, branch, 3), 5.0, 1e-9);
}

TEST(SnapshotIsolationTest, EarlierBranchResultsAreImmutable) {
  GraphStreamOptions options;
  options.num_vertices = 200;
  options.num_tuples = 3000;
  options.source_hub_weight = 10;
  options.seed = 14;

  TornadoCluster cluster(BaseConfig(64),
                         std::make_unique<GraphStream>(options));
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilEmitted(1000, 600.0));
  cluster.ingester().Pause();
  cluster.RunFor(1.0);
  const uint64_t q1 = cluster.ingester().SubmitQuery();
  ASSERT_TRUE(cluster.RunUntilQueryDone(q1, 600.0));
  const LoopId b1 = cluster.BranchOf(q1);

  // Record a handful of distances from branch 1.
  std::vector<std::pair<VertexId, double>> recorded;
  for (VertexId v = 0; v < 50; ++v) {
    recorded.emplace_back(v, LengthOf(cluster, b1, v));
  }

  // Stream the rest; branch 1's results must not change.
  cluster.ingester().Resume();
  ASSERT_TRUE(cluster.RunUntilEmitted(3000, 600.0));
  cluster.RunFor(2.0);
  for (const auto& [v, length] : recorded) {
    const double now = LengthOf(cluster, b1, v);
    if (length == kSsspInfinity) {
      EXPECT_EQ(now, kSsspInfinity) << "vertex " << v;
    } else {
      EXPECT_DOUBLE_EQ(now, length) << "vertex " << v;
    }
  }
}

TEST(IngesterTest, PauseResumeDeliversEveryTupleExactlyOnce) {
  GraphStreamOptions options;
  options.num_vertices = 100;
  options.num_tuples = 2000;
  options.deletion_ratio = 0.0;
  options.seed = 16;

  TornadoCluster cluster(BaseConfig(64),
                         std::make_unique<GraphStream>(options));
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilEmitted(500, 600.0));
  cluster.ingester().Pause();
  const uint64_t at_pause = cluster.ingester().emitted();
  cluster.RunFor(0.5);
  EXPECT_EQ(cluster.ingester().emitted(), at_pause) << "emitted while paused";
  cluster.ingester().Resume();
  ASSERT_TRUE(cluster.RunUntilEmitted(2000, 600.0));
  cluster.RunFor(1.0);
  EXPECT_EQ(cluster.ingester().emitted(), 2000u);
  EXPECT_TRUE(cluster.ingester().exhausted());
  // Every emitted tuple was gathered exactly once.
  EXPECT_EQ(cluster.metrics().Get(metric::kInputsGathered), 2000);
}

}  // namespace
}  // namespace tornado
