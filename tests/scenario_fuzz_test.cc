// Acceptance tests for the seeded scenario fuzzer: mutation is a pure
// function of (seed, run index); a corpus seeded with the deliberately
// protocol-violating chaos scenario must yield a shrunken repro JSON; and
// the written repro must reproduce its violation deterministically when
// loaded back.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/substrate.h"
#include "scenario/fuzzer.h"
#include "scenario/json.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "tests/test_util.h"

namespace tornado {
namespace scenario {
namespace {

Scenario LoadFixture(const std::string& name) {
  Scenario scenario;
  std::vector<std::string> errors;
  const std::string path =
      std::string(TORNADO_SCENARIO_FIXTURES) + "/" + name;
  EXPECT_TRUE(LoadScenarioFile(path, &scenario, &errors));
  for (const std::string& e : errors) ADD_FAILURE() << e;
  return scenario;
}

TEST(ScenarioFuzzTest, MutationIsDeterministicPerSeedAndRun) {
  const Scenario base = LoadFixture("mini_sssp.json");
  const SubstrateRng streams(8);
  Rng a = streams.MakeRng(SubstrateRng::kFuzzMutationStream + 3);
  Rng b = streams.MakeRng(SubstrateRng::kFuzzMutationStream + 3);
  const std::string ma = JsonWrite(ScenarioToJson(MutateScenario(base, &a)));
  const std::string mb = JsonWrite(ScenarioToJson(MutateScenario(base, &b)));
  EXPECT_EQ(ma, mb);

  // A different run index draws a different stream.
  Rng c = streams.MakeRng(SubstrateRng::kFuzzMutationStream + 4);
  const std::string mc = JsonWrite(ScenarioToJson(MutateScenario(base, &c)));
  EXPECT_NE(ma, mc);
}

TEST(ScenarioFuzzTest, MutantsStaySchemaValid) {
  const Scenario base = LoadFixture("mini_sssp.json");
  const SubstrateRng streams(8);
  for (uint32_t run = 0; run < 16; ++run) {
    Rng rng = streams.MakeRng(SubstrateRng::kFuzzMutationStream + run);
    Scenario mutant = MutateScenario(base, &rng);
    mutant.name = "mutant-" + std::to_string(run);
    Scenario reparsed;
    std::vector<std::string> errors;
    EXPECT_TRUE(ParseScenarioText(JsonWrite(ScenarioToJson(mutant)),
                                  &reparsed, &errors))
        << "run " << run;
    for (const std::string& e : errors) {
      ADD_FAILURE() << "run " << run << ": " << e;
    }
    // The mutator never adds sabotage on its own.
    EXPECT_LT(mutant.chaos.commit_regression_after, 0.0) << "run " << run;
  }
}

TEST(ScenarioFuzzTest, SeededViolationYieldsShrunkenReproThatReproduces) {
  const std::string out_dir = ::testing::TempDir() + "scenario_fuzz_out";
  std::vector<Scenario> corpus = {LoadFixture("chaos_commit_regression.json")};

  FuzzOptions options;
  options.seed = 8;
  options.budget_runs = 5;
  options.out_dir = out_dir;
  const FuzzResult result = FuzzScenarios(corpus, options);

  // Every mutant keeps the base's chaos section, so run 0 already trips.
  ASSERT_TRUE(result.found_violation);
  EXPECT_EQ(result.failing_run, 0u);
  ASSERT_FALSE(result.violations.empty());
  EXPECT_EQ(result.violations[0].invariant, "INV-MONO-COMMIT");

  // Shrunk toward minimal: no larger than the mutant's workload bounds.
  EXPECT_LE(result.repro.workload.tuples, corpus[0].workload.tuples);
  EXPECT_LE(result.repro.drive.sample_count, corpus[0].drive.sample_count);
  EXPECT_EQ(result.repro.provenance.at("fuzz_seed"), "8");
  EXPECT_EQ(result.repro.provenance.at("fuzz_run"), "0");
  EXPECT_EQ(result.repro.provenance.at("base_scenario"),
            "chaos_commit_regression");

  // The written repro file loads and reproduces the violation.
  ASSERT_FALSE(result.repro_path.empty());
  Scenario reloaded;
  std::vector<std::string> errors;
  ASSERT_TRUE(LoadScenarioFile(result.repro_path, &reloaded, &errors));
  ScenarioVerdict verdict;
  EXPECT_TRUE(ScenarioViolates(reloaded, &verdict));
  ASSERT_FALSE(verdict.violations.empty());
  EXPECT_EQ(verdict.violations[0].invariant, "INV-MONO-COMMIT");
}

TEST(ScenarioFuzzTest, CampaignIsDeterministicEndToEnd) {
  std::vector<Scenario> corpus = {LoadFixture("chaos_commit_regression.json")};
  FuzzOptions options;
  options.seed = 8;
  options.budget_runs = 3;
  const FuzzResult a = FuzzScenarios(corpus, options);
  const FuzzResult b = FuzzScenarios(corpus, options);
  ASSERT_TRUE(a.found_violation);
  ASSERT_TRUE(b.found_violation);
  EXPECT_EQ(a.failing_run, b.failing_run);
  EXPECT_EQ(a.shrink_runs, b.shrink_runs);
  EXPECT_EQ(JsonWrite(ScenarioToJson(a.repro)),
            JsonWrite(ScenarioToJson(b.repro)));
}

TEST(ScenarioFuzzTest, HealthyCorpusFindsNoViolation) {
  std::vector<Scenario> corpus = {LoadFixture("mini_sssp.json")};
  FuzzOptions options;
  options.seed = 8;
  options.budget_runs = 4;
  const FuzzResult result = FuzzScenarios(corpus, options);
  EXPECT_FALSE(result.found_violation)
      << JsonWrite(ScenarioToJson(result.repro));
  EXPECT_EQ(result.runs, 4u);
}

}  // namespace
}  // namespace scenario
}  // namespace tornado
