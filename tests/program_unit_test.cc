// Program-level unit tests, exercising the vertex programs directly
// through a fake context (no engine): state serialization round-trips,
// gather change-detection, scatter suppression, retraction emission, and
// restore-forced re-emission.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "algos/connected_components.h"
#include "algos/kmeans.h"
#include "algos/pagerank.h"
#include "algos/sgd.h"
#include "algos/sssp.h"
#include "tests/test_util.h"

namespace tornado {
namespace {

/// A stand-in VertexContext collecting emissions and graph mutations.
class FakeContext : public VertexContext {
 public:
  FakeContext(VertexId id, LoopId loop, VertexState* state)
      : id_(id), loop_(loop), state_(state), rng_(99) {}

  VertexId id() const override { return id_; }
  LoopId loop() const override { return loop_; }
  bool is_main_loop() const override { return loop_ == kMainLoop; }
  Iteration iteration() const override { return iteration_; }
  VertexState* state() override { return state_; }

  void AddTarget(VertexId target) override {
    if (std::find(targets_.begin(), targets_.end(), target) !=
        targets_.end()) {
      return;
    }
    targets_.push_back(target);
    auto it = std::find(retiring_.begin(), retiring_.end(), target);
    if (it != retiring_.end()) retiring_.erase(it);
  }
  void RemoveTarget(VertexId target) override {
    auto it = std::find(targets_.begin(), targets_.end(), target);
    if (it == targets_.end()) return;
    targets_.erase(it);
    retiring_.push_back(target);
  }
  const std::vector<VertexId>& targets() const override { return targets_; }
  const std::vector<VertexId>& retiring_targets() const override {
    return retiring_;
  }
  void EmitToTargets(const VertexUpdate& update) override {
    for (VertexId t : targets_) emissions.emplace_back(t, update);
  }
  void EmitTo(VertexId target, const VertexUpdate& update) override {
    emissions.emplace_back(target, update);
  }
  void AddCost(double seconds) override { cost += seconds; }
  void AddProgress(double delta) override { progress += delta; }
  Rng* rng() override { return &rng_; }

  void FinishCommit() {
    emissions.clear();
    retiring_.clear();
  }

  std::vector<std::pair<VertexId, VertexUpdate>> emissions;
  double cost = 0.0;
  double progress = 0.0;
  Iteration iteration_ = 0;

 private:
  VertexId id_;
  LoopId loop_;
  VertexState* state_;
  std::vector<VertexId> targets_;
  std::vector<VertexId> retiring_;
  Rng rng_;
};

template <typename ProgramT>
std::unique_ptr<VertexState> RoundTrip(const ProgramT& program,
                                       const VertexState& state) {
  BufferWriter writer;
  state.Serialize(&writer);
  BufferReader reader(writer.data());
  auto restored = program.DeserializeState(&reader);
  EXPECT_TRUE(reader.AtEnd()) << "trailing bytes after deserialization";
  return restored;
}

// ---------------------------------------------------------------------------
// SSSP
// ---------------------------------------------------------------------------

TEST(SsspUnitTest, SourceStartsAtZeroOthersAtInfinity) {
  SsspProgram program(7);
  auto source = program.CreateState(7);
  auto other = program.CreateState(8);
  EXPECT_EQ(static_cast<SsspState&>(*source).length, 0.0);
  EXPECT_EQ(static_cast<SsspState&>(*other).length, kSsspInfinity);
}

TEST(SsspUnitTest, GatherUpdateDetectsChange) {
  SsspProgram program(0);
  auto state = program.CreateState(5);
  FakeContext ctx(5, kMainLoop, state.get());
  VertexUpdate update;
  update.values = {4.5};
  EXPECT_TRUE(program.OnUpdate(ctx, 1, 0, update));   // new candidate
  EXPECT_FALSE(program.OnUpdate(ctx, 1, 1, update));  // identical
  update.values = {3.0};
  EXPECT_TRUE(program.OnUpdate(ctx, 1, 2, update));  // improved
  // The min re-reduction is memoized; EnsureLength is what Scatter calls.
  EXPECT_EQ(static_cast<SsspState&>(*state).EnsureLength(false), 3.0);
}

TEST(SsspUnitTest, InfinityRetractsCandidate) {
  SsspProgram program(0);
  auto state = program.CreateState(5);
  FakeContext ctx(5, kMainLoop, state.get());
  VertexUpdate update;
  update.values = {4.5};
  program.OnUpdate(ctx, 1, 0, update);
  update.values = {kSsspInfinity};
  EXPECT_TRUE(program.OnUpdate(ctx, 1, 1, update));
  EXPECT_EQ(static_cast<SsspState&>(*state).EnsureLength(false), kSsspInfinity);
  EXPECT_FALSE(program.OnUpdate(ctx, 1, 2, update));  // already gone
}

TEST(SsspUnitTest, ScatterSuppressesUnchangedCandidates) {
  SsspProgram program(0);
  auto state = program.CreateState(0);  // the source: length 0
  FakeContext ctx(0, kMainLoop, state.get());
  ASSERT_TRUE(program.OnInput(ctx, EdgeDelta{0, 9, 2.5, true}));
  program.Scatter(ctx);
  ASSERT_EQ(ctx.emissions.size(), 1u);
  EXPECT_EQ(ctx.emissions[0].first, 9u);
  EXPECT_DOUBLE_EQ(ctx.emissions[0].second.values[0], 2.5);
  ctx.FinishCommit();
  program.Scatter(ctx);  // nothing changed: no re-emission
  EXPECT_TRUE(ctx.emissions.empty());
}

TEST(SsspUnitTest, ParallelEdgeUsesMinWeightAndSurvivesPartialDelete) {
  SsspProgram program(0);
  auto state = program.CreateState(0);
  FakeContext ctx(0, kMainLoop, state.get());
  program.OnInput(ctx, EdgeDelta{0, 9, 5.0, true});
  program.OnInput(ctx, EdgeDelta{0, 9, 2.0, true});
  program.Scatter(ctx);
  ASSERT_EQ(ctx.emissions.size(), 1u);
  EXPECT_DOUBLE_EQ(ctx.emissions[0].second.values[0], 2.0);
  ctx.FinishCommit();
  // Delete the cheaper parallel edge: must re-emit the larger candidate.
  EXPECT_TRUE(program.OnInput(ctx, EdgeDelta{0, 9, 2.0, false}));
  EXPECT_EQ(ctx.targets().size(), 1u) << "other parallel edge remains";
  program.Scatter(ctx);
  ASSERT_EQ(ctx.emissions.size(), 1u);
  EXPECT_DOUBLE_EQ(ctx.emissions[0].second.values[0], 5.0);
}

TEST(SsspUnitTest, RemoveLastEdgeEmitsRetractionToRetiringTarget) {
  SsspProgram program(0);
  auto state = program.CreateState(0);
  FakeContext ctx(0, kMainLoop, state.get());
  program.OnInput(ctx, EdgeDelta{0, 9, 2.0, true});
  program.Scatter(ctx);
  ctx.FinishCommit();
  EXPECT_TRUE(program.OnInput(ctx, EdgeDelta{0, 9, 2.0, false}));
  EXPECT_TRUE(ctx.targets().empty());
  ASSERT_EQ(ctx.retiring_targets().size(), 1u);
  program.Scatter(ctx);
  ASSERT_EQ(ctx.emissions.size(), 1u);
  EXPECT_EQ(ctx.emissions[0].second.values[0], kSsspInfinity);
}

TEST(SsspUnitTest, DeleteUnknownEdgeIsNoChange) {
  SsspProgram program(0);
  auto state = program.CreateState(3);
  FakeContext ctx(3, kMainLoop, state.get());
  EXPECT_FALSE(program.OnInput(ctx, EdgeDelta{3, 9, 1.0, false}));
}

TEST(SsspUnitTest, StateSerializationRoundTrips) {
  SsspProgram program(0);
  auto state = program.CreateState(4);
  auto& sssp = static_cast<SsspState&>(*state);
  sssp.length = 7.25;
  sssp.out_edges[9] = {1.5, 2.5};
  sssp.candidates[2] = 7.25;
  sssp.last_sent[9] = 8.75;
  auto restored = RoundTrip(program, *state);
  const auto& got = static_cast<SsspState&>(*restored);
  EXPECT_EQ(got.length, 7.25);
  EXPECT_EQ(got.out_edges, sssp.out_edges);
  EXPECT_EQ(got.candidates, sssp.candidates);
  EXPECT_EQ(got.last_sent, sssp.last_sent);
}

TEST(SsspUnitTest, CandidatesAboveCapBecomeUnreachable) {
  SsspProgram program(0, false, /*max_distance=*/100.0);
  auto state = program.CreateState(5);
  FakeContext ctx(5, kMainLoop, state.get());
  VertexUpdate update;
  update.values = {250.0};  // beyond the count-to-infinity cap
  EXPECT_FALSE(program.OnUpdate(ctx, 1, 0, update));
  EXPECT_EQ(static_cast<SsspState&>(*state).length, kSsspInfinity);
}

TEST(SsspUnitTest, BatchModeSuppressesMainLoopEmissions) {
  SsspProgram program(0, /*batch_mode=*/true);
  auto state = program.CreateState(0);
  FakeContext main_ctx(0, kMainLoop, state.get());
  program.OnInput(main_ctx, EdgeDelta{0, 9, 2.0, true});
  program.Scatter(main_ctx);
  EXPECT_TRUE(main_ctx.emissions.empty());
  FakeContext branch_ctx(0, /*loop=*/3, state.get());
  branch_ctx.AddTarget(9);
  program.Scatter(branch_ctx);
  EXPECT_EQ(branch_ctx.emissions.size(), 1u);
  EXPECT_TRUE(program.ActivateOnFork(*state));
}

TEST(SsspUnitTest, OnRestoreForcesReemissionIncludingRetractions) {
  SsspProgram program(0);
  auto state = program.CreateState(0);
  FakeContext ctx(0, kMainLoop, state.get());
  program.OnInput(ctx, EdgeDelta{0, 9, 2.0, true});
  program.Scatter(ctx);
  ctx.FinishCommit();
  program.Scatter(ctx);
  ASSERT_TRUE(ctx.emissions.empty());  // suppressed
  program.OnRestore(state.get());
  program.Scatter(ctx);
  ASSERT_EQ(ctx.emissions.size(), 1u) << "restore must re-emit";
  EXPECT_DOUBLE_EQ(ctx.emissions[0].second.values[0], 2.0);
}

// ---------------------------------------------------------------------------
// PageRank
// ---------------------------------------------------------------------------

TEST(PageRankUnitTest, RankFollowsContributions) {
  PageRankProgram program(0.85, 1e-6);
  auto state = program.CreateState(1);
  FakeContext ctx(1, kMainLoop, state.get());
  VertexUpdate update;
  update.values = {1.0};
  EXPECT_TRUE(program.OnUpdate(ctx, 2, 0, update));
  auto& pr = static_cast<PageRankState&>(*state);
  // The re-sum is memoized; EnsureRank is what Scatter calls.
  EXPECT_NEAR(pr.EnsureRank(0.85), 0.15 + 0.85 * 1.0, 1e-12);
  update.values = {0.0};  // retraction
  EXPECT_TRUE(program.OnUpdate(ctx, 2, 1, update));
  EXPECT_NEAR(pr.EnsureRank(0.85), 0.15, 1e-12);
}

TEST(PageRankUnitTest, ContributionSplitsByParallelEdgeCount) {
  PageRankProgram program(0.85, 1e-9);
  auto state = program.CreateState(1);
  FakeContext ctx(1, kMainLoop, state.get());
  program.OnInput(ctx, EdgeDelta{1, 2, 1.0, true});
  program.OnInput(ctx, EdgeDelta{1, 2, 1.0, true});
  program.OnInput(ctx, EdgeDelta{1, 3, 1.0, true});
  program.Scatter(ctx);
  ASSERT_EQ(ctx.emissions.size(), 2u);
  double to2 = 0, to3 = 0;
  for (auto& [t, u] : ctx.emissions) {
    (t == 2 ? to2 : to3) = u.values[0];
  }
  EXPECT_NEAR(to2, 2.0 * to3, 1e-12) << "2 of 3 edges point to vertex 2";
}

TEST(PageRankUnitTest, EmissionSuppressedWithinTolerance) {
  PageRankProgram program(0.85, /*tolerance=*/0.5);
  auto state = program.CreateState(1);
  FakeContext ctx(1, kMainLoop, state.get());
  program.OnInput(ctx, EdgeDelta{1, 2, 1.0, true});
  VertexUpdate update;
  update.values = {1.0};
  program.OnUpdate(ctx, 3, 0, update);  // rank = 0.15 + 0.85 = 1.0
  program.Scatter(ctx);
  ASSERT_EQ(ctx.emissions.size(), 1u);
  ctx.FinishCommit();
  // A tiny incoming contribution changes the rank by < tolerance.
  update.values = {1.1};
  program.OnUpdate(ctx, 3, 1, update);
  program.Scatter(ctx);
  EXPECT_TRUE(ctx.emissions.empty());
}

TEST(PageRankUnitTest, StateSerializationRoundTrips) {
  PageRankProgram program;
  auto state = program.CreateState(1);
  auto& pr = static_cast<PageRankState&>(*state);
  pr.rank = 2.5;
  pr.edge_counts[7] = 3;
  pr.out_degree = 3;
  pr.contributions[4] = 1.25;
  pr.last_sent[7] = 0.5;
  auto restored = RoundTrip(program, *state);
  const auto& got = static_cast<PageRankState&>(*restored);
  EXPECT_EQ(got.rank, 2.5);
  EXPECT_EQ(got.edge_counts, pr.edge_counts);
  EXPECT_EQ(got.out_degree, 3u);
  EXPECT_EQ(got.contributions, pr.contributions);
  EXPECT_EQ(got.last_sent, pr.last_sent);
}

// ---------------------------------------------------------------------------
// KMeans
// ---------------------------------------------------------------------------

KMeansOptions SmallKMeans() {
  KMeansOptions options;
  options.num_clusters = 2;
  options.num_shards = 2;
  options.dimensions = 2;
  options.move_tolerance = 1e-6;
  return options;
}

TEST(KMeansUnitTest, ShardAssignsToNearestCentroid) {
  KMeansProgram program(SmallKMeans());
  auto state = program.CreateState(KMeansShardVertex(0));
  FakeContext ctx(KMeansShardVertex(0), kMainLoop, state.get());
  VertexUpdate c0, c1;
  c0.kind = 0;
  c0.values = {0.0, 0.0};
  c1.kind = 0;
  c1.values = {10.0, 10.0};
  EXPECT_TRUE(program.OnUpdate(ctx, KMeansCentroidVertex(0), 0, c0));
  EXPECT_TRUE(program.OnUpdate(ctx, KMeansCentroidVertex(1), 0, c1));
  program.OnInput(ctx, PointDelta{1, {1.0, 1.0}, true});
  program.OnInput(ctx, PointDelta{2, {9.0, 9.0}, true});
  program.Scatter(ctx);
  // One sum per centroid, each holding one point.
  ASSERT_EQ(ctx.emissions.size(), 2u);
  for (auto& [target, update] : ctx.emissions) {
    EXPECT_EQ(update.values[0], 1.0) << "count per centroid";
  }
}

TEST(KMeansUnitTest, UnchangedCentroidPositionDoesNotDirtyShard) {
  KMeansProgram program(SmallKMeans());
  auto state = program.CreateState(KMeansShardVertex(0));
  FakeContext ctx(KMeansShardVertex(0), kMainLoop, state.get());
  VertexUpdate c0;
  c0.kind = 0;
  c0.values = {1.0, 2.0};
  EXPECT_TRUE(program.OnUpdate(ctx, KMeansCentroidVertex(0), 0, c0));
  EXPECT_FALSE(program.OnUpdate(ctx, KMeansCentroidVertex(0), 1, c0));
}

SgdOptions MakeSmallSgdOptions() {
  SgdOptions options;
  options.num_shards = 2;
  options.dimensions = 3;
  options.reservoir_capacity = 8;
  options.descent_rate = 0.5;
  return options;
}

TEST(KMeansUnitTest, BranchLoopAlwaysRescansOnCentroidBroadcast) {
  // In a branch loop even a value-identical centroid broadcast schedules
  // the shard: the snapshot's assignment must be verified by at least one
  // full rescan (the inherent KMeans cost of Section 6.2.1).
  KMeansProgram program(SmallKMeans());
  auto state = program.CreateState(KMeansShardVertex(0));
  FakeContext ctx(KMeansShardVertex(0), /*loop=*/7, state.get());
  VertexUpdate c0;
  c0.kind = 0;
  c0.values = {1.0, 2.0};
  EXPECT_TRUE(program.OnUpdate(ctx, KMeansCentroidVertex(0), 0, c0));
  EXPECT_TRUE(program.OnUpdate(ctx, KMeansCentroidVertex(0), 1, c0))
      << "identical broadcast must still dirty the shard in a branch";
}

TEST(SgdUnitTest2, BranchLoopAlwaysSchedulesShardOnModelBroadcast) {
  SgdProgram program(MakeSmallSgdOptions());
  auto state = program.CreateState(SgdShardVertex(0));
  FakeContext main_ctx(SgdShardVertex(0), kMainLoop, state.get());
  VertexUpdate model;
  model.kind = 0;
  model.values = {1.0, 2.0, 3.0};
  EXPECT_TRUE(program.OnUpdate(main_ctx, kSgdParamVertex, 0, model));
  EXPECT_FALSE(program.OnUpdate(main_ctx, kSgdParamVertex, 1, model))
      << "main loop suppresses no-op re-broadcasts";
  FakeContext branch_ctx(SgdShardVertex(0), /*loop=*/3, state.get());
  EXPECT_TRUE(program.OnUpdate(branch_ctx, kSgdParamVertex, 0, model))
      << "branch must verify the fixed point at least once";
}

TEST(SgdUnitTest2, BranchGradientStepsDecay) {
  SgdProgram program(MakeSmallSgdOptions());
  auto state = program.CreateState(kSgdParamVertex);
  FakeContext ctx(kSgdParamVertex, /*loop=*/5, state.get());
  VertexUpdate g;
  g.kind = 1;
  g.values = {1.0, 0.0, 1.0, 0.0, 0.0};
  program.OnUpdate(ctx, SgdShardVertex(0), 0, g);
  program.Scatter(ctx);
  auto& param = static_cast<SgdParamState&>(*state);
  const double first_step = -param.weights[0];
  ASSERT_GT(first_step, 0.0);
  const double w0 = param.weights[0];
  program.OnUpdate(ctx, SgdShardVertex(0), 1, g);
  program.Scatter(ctx);
  const double second_step = w0 - param.weights[0];
  EXPECT_LT(second_step, first_step) << "branch GD steps must decay";
  EXPECT_EQ(param.branch_steps, 2u);
}

TEST(KMeansUnitTest, CentroidAveragesPartialSums) {
  KMeansProgram program(SmallKMeans());
  auto state = program.CreateState(KMeansCentroidVertex(0));
  FakeContext ctx(KMeansCentroidVertex(0), kMainLoop, state.get());
  VertexUpdate s0, s1;
  s0.kind = 1;
  s0.values = {2.0, 2.0, 4.0};  // count=2, sums (2, 4)
  s1.kind = 1;
  s1.values = {2.0, 6.0, 4.0};  // count=2, sums (6, 4)
  program.OnUpdate(ctx, KMeansShardVertex(0), 0, s0);
  program.OnUpdate(ctx, KMeansShardVertex(1), 0, s1);
  program.Scatter(ctx);
  const auto& centroid = static_cast<KMeansCentroidState&>(*state);
  EXPECT_DOUBLE_EQ(centroid.position[0], 2.0);
  EXPECT_DOUBLE_EQ(centroid.position[1], 2.0);
}

TEST(KMeansUnitTest, PointDeletionRetractsFromSums) {
  KMeansProgram program(SmallKMeans());
  auto state = program.CreateState(KMeansShardVertex(0));
  FakeContext ctx(KMeansShardVertex(0), kMainLoop, state.get());
  VertexUpdate c0;
  c0.kind = 0;
  c0.values = {0.0, 0.0};
  program.OnUpdate(ctx, KMeansCentroidVertex(0), 0, c0);
  program.OnInput(ctx, PointDelta{1, {1.0, 1.0}, true});
  EXPECT_TRUE(program.OnInput(ctx, PointDelta{1, {}, false}));
  const auto& shard = static_cast<KMeansShardState&>(*state);
  EXPECT_TRUE(shard.points.empty());
  EXPECT_TRUE(shard.sums.empty());
  EXPECT_FALSE(program.OnInput(ctx, PointDelta{1, {}, false}));
}

TEST(KMeansUnitTest, BothStateFlavoursSerialize) {
  KMeansProgram program(SmallKMeans());
  auto centroid = program.CreateState(KMeansCentroidVertex(0));
  auto shard = program.CreateState(KMeansShardVertex(0));
  static_cast<KMeansShardState&>(*shard).points[3] = {1.0, 2.0};
  auto centroid2 = RoundTrip(program, *centroid);
  auto shard2 = RoundTrip(program, *shard);
  EXPECT_NE(dynamic_cast<KMeansCentroidState*>(centroid2.get()), nullptr);
  auto* restored_shard = dynamic_cast<KMeansShardState*>(shard2.get());
  ASSERT_NE(restored_shard, nullptr);
  EXPECT_EQ(restored_shard->points.at(3), (std::vector<double>{1.0, 2.0}));
}

// ---------------------------------------------------------------------------
// SGD
// ---------------------------------------------------------------------------

SgdOptions SmallSgd() {
  SgdOptions options;
  options.num_shards = 2;
  options.dimensions = 3;
  options.reservoir_capacity = 8;
  options.descent_rate = 0.5;
  return options;
}

TEST(SgdUnitTest, HingeLossAndObjective) {
  std::vector<double> w = {1.0, 0.0, 0.0};
  SgdInstance good{1, 1.0, {{0, 2.0}}};   // margin 2 -> loss 0
  SgdInstance bad{2, -1.0, {{0, 2.0}}};   // margin -2 -> loss 3
  EXPECT_DOUBLE_EQ(SgdProgram::InstanceLoss(SgdLoss::kSvmHinge, w, good),
                   0.0);
  EXPECT_DOUBLE_EQ(SgdProgram::InstanceLoss(SgdLoss::kSvmHinge, w, bad),
                   3.0);
  const double objective =
      SgdProgram::Objective(SgdLoss::kSvmHinge, 0.0, w, {good, bad});
  EXPECT_DOUBLE_EQ(objective, 1.5);
}

TEST(SgdUnitTest, LogisticLossIsStableAtExtremes) {
  std::vector<double> w = {100.0};
  SgdInstance pos{1, 1.0, {{0, 1.0}}};
  SgdInstance neg{2, -1.0, {{0, 1.0}}};
  EXPECT_NEAR(SgdProgram::InstanceLoss(SgdLoss::kLogistic, w, pos), 0.0,
              1e-12);
  EXPECT_NEAR(SgdProgram::InstanceLoss(SgdLoss::kLogistic, w, neg), 100.0,
              1e-9);
}

TEST(SgdUnitTest, MainLoopGradientMovesWeights) {
  SgdProgram program(SmallSgd());
  auto state = program.CreateState(kSgdParamVertex);
  FakeContext ctx(kSgdParamVertex, kMainLoop, state.get());
  VertexUpdate gradient;
  gradient.kind = 1;
  gradient.values = {1.0, 0.0, /*grad=*/2.0, 0.0, 0.0};
  EXPECT_TRUE(program.OnUpdate(ctx, SgdShardVertex(0), 0, gradient));
  const auto& param = static_cast<SgdParamState&>(*state);
  EXPECT_LT(param.weights[0], 0.0) << "descent moved against the gradient";
  EXPECT_EQ(param.steps, 1u);
}

TEST(SgdUnitTest, BranchGradientsCombineAtScatter) {
  SgdProgram program(SmallSgd());
  auto state = program.CreateState(kSgdParamVertex);
  FakeContext ctx(kSgdParamVertex, /*loop=*/5, state.get());
  VertexUpdate g0, g1;
  g0.kind = 1;
  g0.values = {1.0, 0.0, 2.0, 0.0, 0.0};
  g1.kind = 1;
  g1.values = {1.0, 0.0, 0.0, 2.0, 0.0};
  program.OnUpdate(ctx, SgdShardVertex(0), 0, g0);
  program.OnUpdate(ctx, SgdShardVertex(1), 0, g1);
  const auto& param = static_cast<SgdParamState&>(*state);
  EXPECT_EQ(param.weights[0], 0.0) << "branch gathers defer application";
  program.Scatter(ctx);
  EXPECT_LT(param.weights[0], 0.0);
  EXPECT_LT(param.weights[1], 0.0);
  EXPECT_GT(ctx.progress, 0.0);
}

TEST(SgdUnitTest, ShardReservoirHonoursCapacity) {
  SgdProgram program(SmallSgd());
  auto state = program.CreateState(SgdShardVertex(0));
  FakeContext ctx(SgdShardVertex(0), kMainLoop, state.get());
  for (uint64_t i = 0; i < 100; ++i) {
    InstanceDelta delta;
    delta.id = i;
    delta.label = 1.0;
    delta.features = {{0, 1.0}};
    EXPECT_TRUE(program.OnInput(ctx, Delta{delta}));
  }
  const auto& shard = static_cast<SgdShardState&>(*state);
  EXPECT_EQ(shard.sample.size(), 8u);
  EXPECT_EQ(shard.seen, 100u);
}

TEST(SgdUnitTest, ParamStateSerializationRoundTrips) {
  SgdProgram program(SmallSgd());
  auto state = program.CreateState(kSgdParamVertex);
  auto& param = static_cast<SgdParamState&>(*state);
  param.weights = {1.0, -2.0, 3.0};
  param.rate = 0.25;
  param.steps = 7;
  param.partial_grads[1] = {0.5, 0.5, 0.5};
  param.partial_loss[1] = {2.0, 4};
  auto restored = RoundTrip(program, *state);
  const auto& got = static_cast<SgdParamState&>(*restored);
  EXPECT_EQ(got.weights, param.weights);
  EXPECT_EQ(got.rate, 0.25);
  EXPECT_EQ(got.steps, 7u);
  EXPECT_EQ(got.partial_grads, param.partial_grads);
  EXPECT_EQ(got.partial_loss, param.partial_loss);
}

TEST(SgdUnitTest, ShardStateSerializationRoundTrips) {
  SgdProgram program(SmallSgd());
  auto state = program.CreateState(SgdShardVertex(1));
  auto& shard = static_cast<SgdShardState&>(*state);
  shard.sample.push_back(SgdInstance{9, -1.0, {{0, 1.5}, {2, -0.5}}});
  shard.seen = 42;
  shard.weights = {0.5, 0.5, 0.5};
  shard.has_weights = true;
  auto restored = RoundTrip(program, *state);
  const auto& got = static_cast<SgdShardState&>(*restored);
  ASSERT_EQ(got.sample.size(), 1u);
  EXPECT_EQ(got.sample[0].id, 9u);
  EXPECT_EQ(got.sample[0].features, shard.sample[0].features);
  EXPECT_EQ(got.seen, 42u);
  EXPECT_TRUE(got.has_weights);
}

// ---------------------------------------------------------------------------
// Connected components
// ---------------------------------------------------------------------------

TEST(CcUnitTest, LabelIsMinOfSelfAndNeighbors) {
  ConnectedComponentsProgram program;
  auto state = program.CreateState(5);
  FakeContext ctx(5, kMainLoop, state.get());
  VertexUpdate label;
  label.values = {3.0};
  EXPECT_TRUE(program.OnUpdate(ctx, 8, 0, label));
  EXPECT_EQ(static_cast<ComponentState&>(*state).label, 3u);
  label.values = {7.0};
  EXPECT_TRUE(program.OnUpdate(ctx, 9, 0, label));  // stored, not adopted
  EXPECT_EQ(static_cast<ComponentState&>(*state).label, 3u);
}

TEST(CcUnitTest, EdgeDeltaRoutesToBothEndpoints) {
  auto router = ConnectedComponentsProgram::MakeRouter();
  std::vector<std::pair<VertexId, Delta>> out;
  StreamTuple tuple;
  tuple.sequence = 0;
  tuple.delta = EdgeDelta{3, 9, 1.0, true};
  router(tuple, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].first, 3u);
  EXPECT_EQ(out[1].first, 9u);
}

TEST(CcUnitTest, ScatterSuppressesUnchangedLabel) {
  ConnectedComponentsProgram program;
  auto state = program.CreateState(5);
  FakeContext ctx(5, kMainLoop, state.get());
  program.OnInput(ctx, EdgeDelta{5, 9, 1.0, true});
  program.Scatter(ctx);
  ASSERT_EQ(ctx.emissions.size(), 1u);
  ctx.FinishCommit();
  program.Scatter(ctx);
  EXPECT_TRUE(ctx.emissions.empty());
  program.OnRestore(state.get());
  program.Scatter(ctx);
  EXPECT_EQ(ctx.emissions.size(), 1u);
}

TEST(CcUnitTest, StateSerializationRoundTrips) {
  ConnectedComponentsProgram program;
  auto state = program.CreateState(5);
  auto& cc = static_cast<ComponentState&>(*state);
  cc.label = 2;
  cc.neighbors[9] = 2;
  cc.neighbor_labels[9] = 2;
  cc.last_sent[9] = 2;
  auto restored = RoundTrip(program, *state);
  const auto& got = static_cast<ComponentState&>(*restored);
  EXPECT_EQ(got.label, 2u);
  EXPECT_EQ(got.neighbors, cc.neighbors);
  EXPECT_EQ(got.neighbor_labels, cc.neighbor_labels);
  EXPECT_EQ(got.last_sent, cc.last_sent);
}

}  // namespace
}  // namespace tornado
