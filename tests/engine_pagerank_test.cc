// End-to-end PageRank on the Tornado engine, validated against a
// Gauss-Seidel solver of the same (unnormalized, no-dangling-redistribution)
// fixed-point equations on the final graph.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <unordered_map>

#include "algos/pagerank.h"
#include "core/cluster.h"
#include "graph/dynamic_graph.h"
#include "stream/graph_stream.h"
#include "stream/vector_stream.h"
#include "tests/test_util.h"

namespace tornado {
namespace {

constexpr double kDamping = 0.85;

/// Solves r_v = (1-d) + d * sum_{u->v} r_u * count(u,v) / deg(u) by
/// repeated sweeps (the fixed point PageRankProgram converges to).
std::unordered_map<VertexId, double> ReferenceRanks(const DynamicGraph& graph,
                                                    double tolerance) {
  std::unordered_map<VertexId, double> rank;
  for (VertexId v : graph.Vertices()) rank[v] = 1.0;
  for (int sweep = 0; sweep < 2000; ++sweep) {
    double delta = 0.0;
    std::unordered_map<VertexId, double> incoming;
    for (VertexId u : graph.Vertices()) {
      const auto& edges = graph.OutEdges(u);
      if (edges.empty()) continue;
      const double share = rank[u] / static_cast<double>(edges.size());
      for (const auto& e : edges) incoming[e.dst] += share;
    }
    for (VertexId v : graph.Vertices()) {
      const double next = (1.0 - kDamping) + kDamping * incoming[v];
      delta += std::fabs(next - rank[v]);
      rank[v] = next;
    }
    if (delta < tolerance) break;
  }
  return rank;
}

TEST(PageRankEngineTest, BranchLoopApproximatesReferenceRanks) {
  GraphStreamOptions graph_options;
  graph_options.num_vertices = 150;
  graph_options.num_tuples = 1200;
  graph_options.deletion_ratio = 0.03;
  graph_options.seed = 11;

  JobConfig config;
  config.program = std::make_shared<PageRankProgram>(kDamping, 1e-4);
  config.delay_bound = 64;
  config.num_processors = 4;
  config.num_hosts = 2;
  config.seed = 3;
  config.ingest_rate = 100000.0;

  TornadoCluster cluster(config, std::make_unique<GraphStream>(graph_options));
  CheckObserver checker(CheckObserver::Options{
      /*abort_on_violation=*/true, &cluster.store()});
  AttachChecker(cluster, checker);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilEmitted(graph_options.num_tuples, 600.0));
  cluster.ingester().Pause();
  cluster.RunFor(3.0);

  const uint64_t query = cluster.ingester().SubmitQuery();
  ASSERT_TRUE(cluster.RunUntilQueryDone(query, 600.0));
  const LoopId branch = cluster.BranchOf(query);
  DeepCheckAll(cluster, checker);
  EXPECT_GT(checker.commits_checked(), 0u);

  GraphStream replay(graph_options);
  DynamicGraph graph;
  while (auto tuple = replay.Next()) {
    graph.Apply(std::get<EdgeDelta>(tuple->delta));
  }
  const auto expected = ReferenceRanks(graph, 1e-9);

  // The emission tolerance bounds how far the asynchronous fixed point can
  // drift from the exact one: each in-neighbor may withhold up to
  // `tolerance` of contribution change, amplified by damping.
  double max_err = 0.0;
  size_t checked = 0;
  for (VertexId v : graph.Vertices()) {
    auto state = cluster.ReadVertexState(branch, v);
    if (state == nullptr) continue;  // never touched: no in/out edges
    const double got = static_cast<const PageRankState&>(*state).rank;
    const double want = expected.at(v);
    max_err = std::max(max_err, std::fabs(got - want) / want);
    ++checked;
  }
  EXPECT_GT(checked, graph.NumVertices() / 2);
  EXPECT_LT(max_err, 0.05) << "async PageRank drifted too far";
}

TEST(PageRankEngineTest, ScriptedChainAndRetraction) {
  // Chain 1 -> 2 -> 3: rank(3) > rank(2) > rank(isolated). Then retract
  // 2 -> 3; rank(3) must fall back to the baseline (1 - d).
  std::vector<Delta> deltas = {
      EdgeDelta{1, 2, 1.0, true},
      EdgeDelta{2, 3, 1.0, true},
  };

  JobConfig config;
  config.program = std::make_shared<PageRankProgram>(kDamping, 1e-7);
  config.delay_bound = 16;
  config.num_processors = 2;
  config.num_hosts = 1;

  TornadoCluster cluster(config, std::make_unique<VectorStream>(deltas));
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilEmitted(2, 60.0));
  cluster.RunFor(2.0);

  const uint64_t q1 = cluster.ingester().SubmitQuery();
  ASSERT_TRUE(cluster.RunUntilQueryDone(q1, 300.0));
  const LoopId b1 = cluster.BranchOf(q1);

  auto rank_of = [&](LoopId loop, VertexId v) {
    auto state = cluster.ReadVertexState(loop, v);
    EXPECT_NE(state, nullptr) << "vertex " << v;
    return state == nullptr
               ? -1.0
               : static_cast<const PageRankState&>(*state).rank;
  };

  const double base = 1.0 - kDamping;
  const double r1 = rank_of(b1, 1);
  const double r2 = rank_of(b1, 2);
  const double r3 = rank_of(b1, 3);
  EXPECT_NEAR(r1, base, 1e-6);
  EXPECT_NEAR(r2, base + kDamping * r1, 1e-4);
  EXPECT_NEAR(r3, base + kDamping * r2, 1e-4);
}

}  // namespace
}  // namespace tornado
