// Unit tests for the ProtocolStateMachine in isolation: no EventLoop, no
// Network, no Processor — messages go in, actions come out, and the test
// inspects the SessionTable, the VersionedStore, and a recording observer.

#include <gtest/gtest.h>

#include <memory>
#include <variant>
#include <vector>

#include "common/serde.h"
#include "core/config.h"
#include "core/messages.h"
#include "core/vertex_program.h"
#include "engine/consistency_policy.h"
#include "engine/observer.h"
#include "engine/protocol.h"
#include "engine/session_table.h"
#include "engine/vertex_session.h"
#include "graph/dynamic_graph.h"
#include "storage/versioned_store.h"

namespace tornado {
namespace {

// --- A minimal max-propagation program. ---
// OnInput: EdgeDelta{src, dst, weight, insert} targets the vertex `src`;
// insert adds `dst` as a consumer (0 = none) and raises value to `weight`;
// deletion retires `dst`. OnUpdate takes the max. Scatter broadcasts.

struct TestState : VertexState {
  double value = 0.0;
  void Serialize(BufferWriter* writer) const override {
    writer->PutDouble(value);
  }
};

class TestProgram : public VertexProgram {
 public:
  std::unique_ptr<VertexState> CreateState(VertexId) const override {
    return std::make_unique<TestState>();
  }
  std::unique_ptr<VertexState> DeserializeState(
      BufferReader* reader) const override {
    auto state = std::make_unique<TestState>();
    EXPECT_TRUE(reader->GetDouble(&state->value).ok());
    return state;
  }
  bool OnInput(VertexContext& ctx, const Delta& delta) const override {
    const auto& e = std::get<EdgeDelta>(delta);
    if (e.dst != 0 && e.dst != ctx.id()) {
      if (e.insert) {
        ctx.AddTarget(e.dst);
      } else {
        ctx.RemoveTarget(e.dst);
      }
    }
    auto* state = static_cast<TestState*>(ctx.state());
    if (e.insert && e.weight > state->value) {
      state->value = e.weight;
      return true;
    }
    return false;
  }
  bool OnUpdate(VertexContext& ctx, VertexId, Iteration,
                const VertexUpdate& update) const override {
    auto* state = static_cast<TestState*>(ctx.state());
    if (update.values[0] > state->value) {
      state->value = update.values[0];
      return true;
    }
    return false;
  }
  void Scatter(VertexContext& ctx) const override {
    VertexUpdate update;
    update.kind = 1;
    update.values = {static_cast<const TestState*>(ctx.state())->value};
    ctx.EmitToTargets(update);
  }
};

struct ObservedCommit {
  LoopId loop;
  VertexId vertex;
  Iteration iteration;
};

class RecordingObserver : public EngineObserver {
 public:
  void OnInputGathered(LoopId, VertexId) override { ++inputs; }
  void OnPrepare(LoopId, LoopEpoch, VertexId, uint64_t fanout) override {
    prepares += fanout;
  }
  void OnAck(LoopId, LoopEpoch, VertexId, VertexId, Iteration) override {
    ++acks;
  }
  void OnCommit(LoopId loop, LoopEpoch, VertexId vertex, Iteration iteration,
                Iteration, Iteration) override {
    commits.push_back({loop, vertex, iteration});
  }
  void OnBlock(LoopId, LoopEpoch, VertexId, Iteration) override { ++blocks; }
  void OnFlush(LoopId, uint64_t versions) override { flushed += versions; }

  uint64_t inputs = 0;
  uint64_t prepares = 0;
  uint64_t acks = 0;
  uint64_t blocks = 0;
  uint64_t flushed = 0;
  std::vector<ObservedCommit> commits;
};

class Harness {
 public:
  explicit Harness(uint64_t delay_bound = 8,
                   ConsistencyMode mode = ConsistencyMode::kBoundedAsync) {
    config_.program = std::make_shared<TestProgram>();
    config_.delay_bound = delay_bound;
    config_.consistency = mode;
    config_.num_processors = 1;
    policy_ = MakeConsistencyPolicy(config_);
    sm_ = std::make_unique<ProtocolStateMachine>(
        /*index=*/0, &config_, &sessions_, policy_.get(),
        HashPartitioner(1), &observer_);
  }

  EngineActions Dispatch(const Payload& msg) {
    EngineActions out;
    EXPECT_TRUE(sm_->Dispatch(msg, &out));
    return out;
  }

  /// Routes an input delta to vertex `target` on the main loop.
  EngineActions Input(VertexId target, EdgeDelta e) {
    InputMsg msg;
    msg.target = target;
    msg.delta = e;
    return Dispatch(msg);
  }

  EngineActions Terminate(Iteration upto, LoopId loop = kMainLoop,
                          LoopEpoch epoch = 0) {
    TerminatedMsg msg;
    msg.loop = loop;
    msg.epoch = epoch;
    msg.upto = upto;
    return Dispatch(msg);
  }

  /// Re-dispatches every engine-bound message in `actions` (this harness is
  /// a 1-partition cluster, so every vertex is local), collecting the next
  /// round of actions. Master-bound reports are dropped.
  EngineActions Pump(const EngineActions& actions) {
    EngineActions out;
    for (const auto& o : actions.messages) {
      if (o.to_master) continue;
      EXPECT_TRUE(sm_->Dispatch(*o.payload, &out));
    }
    return out;
  }

  /// Pumps until no vertex-bound messages remain.
  void PumpToQuiescence(EngineActions actions) {
    for (int round = 0; round < 100; ++round) {
      bool any = false;
      for (const auto& o : actions.messages) any |= !o.to_master;
      if (!any) return;
      actions = Pump(actions);
    }
    FAIL() << "protocol did not quiesce";
  }

  double ValueOf(LoopId loop, VertexId v) const {
    const LoopState* ls = sessions_.Get(loop);
    if (ls == nullptr) return -1.0;
    auto it = ls->vertices.find(v);
    if (it == ls->vertices.end()) return -1.0;
    return static_cast<const TestState*>(it->second.state.get())->value;
  }

  JobConfig config_;
  VersionedStore store_;
  SessionTable sessions_{&config_, &store_};
  std::unique_ptr<ConsistencyPolicy> policy_;
  RecordingObserver observer_;
  std::unique_ptr<ProtocolStateMachine> sm_;
};

template <typename T>
std::vector<const T*> MsgsOf(const EngineActions& actions) {
  std::vector<const T*> out;
  for (const auto& o : actions.messages) {
    if (const auto* m = dynamic_cast<const T*>(o.payload.get())) {
      out.push_back(m);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------

TEST(VertexSessionTest, TargetMembershipAndRetirement) {
  VertexSession s;
  s.AddTarget(2);
  s.AddTarget(3);
  s.AddTarget(2);  // duplicate: ignored
  EXPECT_EQ(s.targets(), (std::vector<VertexId>{2, 3}));
  EXPECT_TRUE(s.HasTarget(2));

  s.RemoveTarget(2);
  EXPECT_EQ(s.targets(), (std::vector<VertexId>{3}));
  EXPECT_FALSE(s.HasTarget(2));
  EXPECT_TRUE(s.IsRetiring(2));
  s.RemoveTarget(99);  // absent: no-op
  EXPECT_EQ(s.retiring(), (std::vector<VertexId>{2}));

  s.AddTarget(2);  // re-adding cancels the retirement
  EXPECT_TRUE(s.HasTarget(2));
  EXPECT_FALSE(s.IsRetiring(2));
  EXPECT_TRUE(s.retiring().empty());

  s.RemoveTarget(3);
  s.ClearRetiring();
  EXPECT_TRUE(s.retiring().empty());
  EXPECT_EQ(s.targets(), (std::vector<VertexId>{2}));
}

TEST(ProtocolStateMachineTest, CommitWithoutConsumersSkipsPrepare) {
  Harness h;
  EngineActions out = h.Input(1, EdgeDelta{1, 0, 5.0, true});

  EXPECT_TRUE(MsgsOf<PrepareMsg>(out).empty());
  EXPECT_EQ(h.observer_.prepares, 0u);
  ASSERT_EQ(h.observer_.commits.size(), 1u);
  // Inputs gathered at tau = 0 belong to iteration 1.
  EXPECT_EQ(h.observer_.commits[0].iteration, 1u);
  EXPECT_EQ(h.store_.GetVersionIteration(kMainLoop, 1, kNoIteration - 1), 1u);
  EXPECT_GT(out.cost, 0.0);
}

TEST(ProtocolStateMachineTest, PrepareAckRoundtripPropagatesValue) {
  Harness h;
  EngineActions out = h.Input(1, EdgeDelta{1, 2, 7.0, true});

  auto prepares = MsgsOf<PrepareMsg>(out);
  ASSERT_EQ(prepares.size(), 1u);
  EXPECT_EQ(prepares[0]->src_vertex, 1u);
  EXPECT_EQ(prepares[0]->dst_vertex, 2u);
  EXPECT_TRUE(h.observer_.commits.empty());

  h.PumpToQuiescence(out);

  // v2 acked, v1 committed and scattered, v2 gathered and committed.
  EXPECT_EQ(h.observer_.acks, 1u);
  ASSERT_EQ(h.observer_.commits.size(), 2u);
  EXPECT_EQ(h.observer_.commits[0].vertex, 1u);
  EXPECT_EQ(h.observer_.commits[1].vertex, 2u);
  EXPECT_DOUBLE_EQ(h.ValueOf(kMainLoop, 2), 7.0);
}

TEST(ProtocolStateMachineTest, ConcurrentPreparesEarlierTimestampWins) {
  Harness h;
  // 1 and 2 prepare concurrently toward each other; v1 drew the earlier
  // Lamport time, so v2 acks immediately while v1 defers its ack.
  EngineActions a1 = h.Input(1, EdgeDelta{1, 2, 3.0, true});
  EngineActions a2 = h.Input(2, EdgeDelta{2, 1, 4.0, true});
  auto p1 = MsgsOf<PrepareMsg>(a1);
  auto p2 = MsgsOf<PrepareMsg>(a2);
  ASSERT_EQ(p1.size(), 1u);
  ASSERT_EQ(p2.size(), 1u);
  ASSERT_TRUE(p1[0]->time < p2[0]->time);

  // v2 (preparing at a later time) receives v1's earlier PREPARE: immediate
  // ack. v1 receives v2's later PREPARE: ack deferred until v1 commits.
  EngineActions r1 = h.Dispatch(*p2[0]);
  EXPECT_TRUE(MsgsOf<AckMsg>(r1).empty());
  EngineActions r2 = h.Dispatch(*p1[0]);
  ASSERT_EQ(MsgsOf<AckMsg>(r2).size(), 1u);
  EXPECT_TRUE(h.observer_.commits.empty());

  // Releasing the ack lets v1 commit first; its commit releases the
  // deferred ack, after which v2 commits with the propagated maximum.
  h.PumpToQuiescence(r2);
  ASSERT_GE(h.observer_.commits.size(), 2u);
  EXPECT_EQ(h.observer_.commits[0].vertex, 1u);
  EXPECT_DOUBLE_EQ(h.ValueOf(kMainLoop, 1), 4.0);
  EXPECT_DOUBLE_EQ(h.ValueOf(kMainLoop, 2), 4.0);
}

TEST(ProtocolStateMachineTest, DuplicatePreparesAreIdempotent) {
  Harness h;
  PrepareMsg prep;
  prep.loop = kMainLoop;
  prep.epoch = 0;
  prep.src_vertex = 7;
  prep.dst_vertex = 1;
  prep.time = LamportTime{3, 9};

  EngineActions r1 = h.Dispatch(prep);
  EngineActions r2 = h.Dispatch(prep);
  // Each delivery is acknowledged (at-least-once transport), but the
  // prepare list holds the producer only once.
  EXPECT_EQ(MsgsOf<AckMsg>(r1).size(), 1u);
  EXPECT_EQ(MsgsOf<AckMsg>(r2).size(), 1u);
  const LoopState* ls = h.sessions_.Get(kMainLoop);
  ASSERT_NE(ls, nullptr);
  EXPECT_EQ(ls->vertices.at(1).prepare_list.size(), 1u);

  // The producer's commit notification drains the list exactly once.
  UpdateMsg upd;
  upd.loop = kMainLoop;
  upd.src_vertex = 7;
  upd.dst_vertex = 1;
  upd.iteration = 0;
  upd.update.kind = kNoopUpdateKind;
  h.Dispatch(upd);
  EXPECT_TRUE(ls->vertices.at(1).prepare_list.empty());
}

TEST(ProtocolStateMachineTest, UpdatesBelowMergeFloorAreDiscarded) {
  Harness h;
  const Iteration merge_at = 8;

  // Materialize a merged version of v2 at the merge iteration, as the
  // master's MergeLoop would, then have the processor adopt it.
  BufferWriter writer;
  TestState merged;
  merged.value = 50.0;
  merged.Serialize(&writer);
  writer.PutU64Vec({});
  h.store_.Put(kMainLoop, 2, merge_at, writer.Release());

  AdoptMergeMsg adopt;
  adopt.loop = kMainLoop;
  adopt.epoch = 0;
  adopt.merge_iteration = merge_at;
  h.Dispatch(adopt);
  EXPECT_DOUBLE_EQ(h.ValueOf(kMainLoop, 2), 50.0);

  // An in-transit pre-merge update (iteration < merge floor) must not be
  // gathered: the merged version supersedes it.
  UpdateMsg stale;
  stale.loop = kMainLoop;
  stale.src_vertex = 1;
  stale.dst_vertex = 2;
  stale.iteration = 3;
  stale.update.kind = 1;
  stale.update.values = {99.0};
  h.Dispatch(stale);

  EXPECT_DOUBLE_EQ(h.ValueOf(kMainLoop, 2), 50.0);
  EXPECT_TRUE(h.observer_.commits.empty());
  const LoopState* ls = h.sessions_.Get(kMainLoop);
  EXPECT_EQ(ls->buckets.at(3).gathered, 1u);  // received, then dropped
}

TEST(ProtocolStateMachineTest, OrphanedTrafficReplaysWhenLoopForks) {
  Harness h;
  const LoopId branch = 5;

  // Traffic for a branch the fork broadcast has not reached yet.
  UpdateMsg early;
  early.loop = branch;
  early.epoch = 0;
  early.src_vertex = 1;
  early.dst_vertex = 2;
  early.iteration = 0;
  early.update.kind = 1;
  early.update.values = {11.0};
  EngineActions parked = h.Dispatch(early);
  EXPECT_TRUE(parked.messages.empty());
  EXPECT_EQ(h.sessions_.Get(branch), nullptr);

  ForkBranchMsg fork;
  fork.branch = branch;
  fork.parent = kMainLoop;
  fork.epoch = 0;
  fork.snapshot_iteration = 0;
  EngineActions out = h.Dispatch(fork);

  // The parked update was replayed into the new loop: v2 gathered it,
  // committed, and the fork reported the branch to the master.
  ASSERT_EQ(h.observer_.commits.size(), 1u);
  EXPECT_EQ(h.observer_.commits[0].loop, branch);
  EXPECT_DOUBLE_EQ(h.ValueOf(branch, 2), 11.0);
  auto reports = MsgsOf<ProgressMsg>(out);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0]->loop, branch);
}

TEST(ProtocolStateMachineTest, OrphanReplayAndStaleDiscardAcrossRestart) {
  Harness h;
  h.Input(1, EdgeDelta{1, 0, 5.0, true});  // materializes main loop, epoch 0

  // A message already stamped with the post-restart epoch parks.
  UpdateMsg future;
  future.loop = kMainLoop;
  future.epoch = 1;
  future.src_vertex = 9;
  future.dst_vertex = 3;
  future.iteration = 1;
  future.update.kind = 1;
  future.update.values = {21.0};
  EXPECT_TRUE(h.Dispatch(future).messages.empty());

  RestartLoopMsg restart;
  restart.loop = kMainLoop;
  restart.new_epoch = 1;
  restart.from_iteration = kNoIteration;  // from scratch
  h.Dispatch(restart);

  // The parked epoch-1 update replayed into the restarted loop.
  EXPECT_DOUBLE_EQ(h.ValueOf(kMainLoop, 3), 21.0);

  // Stale epoch-0 traffic from before the rollback is discarded.
  const size_t commits_before = h.observer_.commits.size();
  UpdateMsg stale;
  stale.loop = kMainLoop;
  stale.epoch = 0;
  stale.src_vertex = 1;
  stale.dst_vertex = 4;
  stale.iteration = 0;
  stale.update.kind = 1;
  stale.update.values = {33.0};
  EXPECT_TRUE(h.Dispatch(stale).messages.empty());
  EXPECT_EQ(h.observer_.commits.size(), commits_before);
  EXPECT_EQ(h.sessions_.Get(kMainLoop)->vertices.count(4), 0u);
}

TEST(ProtocolStateMachineTest, SynchronousPolicyRunsLockStepWithoutPrepares) {
  Harness h(/*delay_bound=*/64, ConsistencyMode::kSynchronous);

  // With delta = 1 the input's iteration-1 work exceeds the horizon (tau =
  // 0, bound = 0): the vertex stalls until iteration 0 terminates.
  EngineActions out = h.Input(1, EdgeDelta{1, 2, 5.0, true});
  EXPECT_TRUE(out.messages.empty());
  EXPECT_TRUE(h.observer_.commits.empty());
  EXPECT_EQ(h.sessions_.Get(kMainLoop)->stalled.count(1), 1u);

  // Terminating iteration 0 releases the stall; the commit lands exactly
  // at the bound, so no PREPARE round is needed (Table 2's synchronous
  // row: zero prepares).
  EngineActions t0 = h.Terminate(0);
  ASSERT_EQ(h.observer_.commits.size(), 1u);
  EXPECT_EQ(h.observer_.commits[0].iteration, 1u);
  EXPECT_EQ(h.observer_.prepares, 0u);

  // The scattered update is itself at the bound: it buffers until its
  // iteration terminates, then gathers and commits — still prepare-free.
  auto updates = MsgsOf<UpdateMsg>(t0);
  ASSERT_EQ(updates.size(), 1u);
  h.Dispatch(*updates[0]);
  EXPECT_EQ(h.observer_.blocks, 1u);
  EngineActions t1 = h.Terminate(1);
  ASSERT_EQ(h.observer_.commits.size(), 2u);
  EXPECT_EQ(h.observer_.commits[1].vertex, 2u);
  EXPECT_EQ(h.observer_.prepares, 0u);
  EXPECT_DOUBLE_EQ(h.ValueOf(kMainLoop, 2), 5.0);
}

TEST(ProtocolStateMachineTest, FullyAsyncPolicyNeverBlocksOrStalls) {
  Harness h(/*delay_bound=*/64, ConsistencyMode::kFullyAsync);

  // An update far beyond any terminated iteration is gathered immediately:
  // there is no delay bound to buffer it at.
  UpdateMsg far;
  far.loop = kMainLoop;
  far.src_vertex = 9;
  far.dst_vertex = 2;
  far.iteration = 1000;
  far.update.kind = 1;
  far.update.values = {2.0};
  h.Dispatch(far);
  EXPECT_EQ(h.observer_.blocks, 0u);
  ASSERT_EQ(h.observer_.commits.size(), 1u);
  EXPECT_EQ(h.observer_.commits[0].iteration, 1001u);
  EXPECT_TRUE(h.sessions_.Get(kMainLoop)->stalled.empty());

  // Multi-consumer commits still run the full prepare round (the horizon
  // is unreachable, so the commit-at-bound shortcut never fires).
  EngineActions out = h.Input(1, EdgeDelta{1, 2, 9.0, true});
  EXPECT_EQ(MsgsOf<PrepareMsg>(out).size(), 1u);
  h.PumpToQuiescence(out);
  EXPECT_EQ(h.observer_.blocks, 0u);
  EXPECT_DOUBLE_EQ(h.ValueOf(kMainLoop, 2), 9.0);
}

TEST(ProtocolStateMachineTest, BuildReportFlushesDirtyVersions) {
  Harness h;
  h.Input(1, EdgeDelta{1, 0, 5.0, true});
  EXPECT_GT(h.store_.DirtyVersions(kMainLoop), 0u);

  LoopState* ls = h.sessions_.Get(kMainLoop);
  ASSERT_NE(ls, nullptr);
  EngineActions out;
  auto report = h.sm_->BuildReport(*ls, &out);

  EXPECT_EQ(h.observer_.flushed, 1u);
  EXPECT_EQ(h.store_.DirtyVersions(kMainLoop), 0u);
  ASSERT_EQ(out.messages.size(), 1u);
  EXPECT_TRUE(out.messages[0].to_master);
  EXPECT_EQ(report->loop, kMainLoop);
  EXPECT_EQ(report->inputs_gathered, 1u);
  EXPECT_EQ(report->report_seq, 1u);
  EXPECT_EQ(report->buckets.at(1).committed, 1u);

  // A second report without new commits does not flush again.
  EngineActions out2;
  auto report2 = h.sm_->BuildReport(*ls, &out2);
  EXPECT_EQ(h.observer_.flushed, 1u);
  EXPECT_EQ(report2->report_seq, 2u);
}

}  // namespace
}  // namespace tornado
