// Unit tests for the versioned store and the on-disk checkpoint log.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "storage/checkpoint_log.h"
#include "storage/versioned_store.h"
#include "tests/test_util.h"

namespace tornado {
namespace {

std::vector<uint8_t> Bytes(std::initializer_list<uint8_t> v) { return v; }

TEST(VersionedStoreTest, SnapshotReadsLatestAtOrBelow) {
  VersionedStore store;
  store.Put(0, 7, 1, Bytes({1}));
  store.Put(0, 7, 5, Bytes({5}));
  store.Put(0, 7, 9, Bytes({9}));

  EXPECT_EQ(store.Get(0, 7, 0), nullptr);
  EXPECT_EQ((*store.Get(0, 7, 1))[0], 1);
  EXPECT_EQ((*store.Get(0, 7, 4))[0], 1);
  EXPECT_EQ((*store.Get(0, 7, 5))[0], 5);
  EXPECT_EQ((*store.Get(0, 7, 100))[0], 9);
  EXPECT_EQ((*store.GetLatest(0, 7))[0], 9);
  EXPECT_EQ(store.GetVersionIteration(0, 7, 7), 5u);
  EXPECT_EQ(store.GetVersionIteration(0, 7, 0), kNoIteration);
}

TEST(VersionedStoreTest, OverwriteSameIteration) {
  VersionedStore store;
  store.Put(0, 1, 3, Bytes({1}));
  store.Put(0, 1, 3, Bytes({2}));
  EXPECT_EQ(store.VersionCount(0, 1), 1u);
  EXPECT_EQ((*store.Get(0, 1, 3))[0], 2);
}

TEST(VersionedStoreTest, FlushTracksDurabilityAndDirtyCount) {
  VersionedStore store;
  store.Put(0, 1, 1, Bytes({1}));
  store.Put(0, 2, 2, Bytes({2}));
  store.Put(0, 3, 7, Bytes({7}));
  EXPECT_EQ(store.DirtyVersions(0), 3u);
  EXPECT_EQ(store.Flush(0, 2), 2u);
  EXPECT_EQ(store.DirtyVersions(0), 1u);
  EXPECT_EQ(store.DurableIteration(0), 2u);
  // Flushing below the watermark is a no-op.
  EXPECT_EQ(store.Flush(0, 1), 0u);
  EXPECT_EQ(store.Flush(0, 10), 1u);
  EXPECT_EQ(store.DirtyVersions(0), 0u);
}

TEST(VersionedStoreTest, TruncateAfterDropsNewerVersions) {
  VersionedStore store;
  for (Iteration i = 1; i <= 5; ++i) {
    store.Put(0, 1, i, Bytes({static_cast<uint8_t>(i)}));
  }
  store.TruncateAfter(0, 3);
  EXPECT_EQ(store.VersionCount(0, 1), 3u);
  EXPECT_EQ((*store.GetLatest(0, 1))[0], 3);
}

TEST(VersionedStoreTest, RecoverToDurableDropsUnflushed) {
  VersionedStore store;
  store.Put(0, 1, 1, Bytes({1}));
  store.Flush(0, 1);
  store.Put(0, 1, 2, Bytes({2}));
  store.RecoverToDurable(0);
  EXPECT_EQ((*store.GetLatest(0, 1))[0], 1);

  // A never-flushed loop disappears entirely.
  store.Put(9, 1, 1, Bytes({1}));
  store.RecoverToDurable(9);
  EXPECT_EQ(store.GetLatest(9, 1), nullptr);
}

TEST(VersionedStoreTest, PruneBelowKeepsSnapshotBase) {
  VersionedStore store;
  for (Iteration i = 1; i <= 6; ++i) {
    store.Put(0, 1, i, Bytes({static_cast<uint8_t>(i)}));
  }
  EXPECT_EQ(store.PruneBelow(0, 4), 3u);  // versions 1,2,3 dropped; 4 kept
  EXPECT_EQ((*store.Get(0, 1, 4))[0], 4);
  EXPECT_EQ(store.Get(0, 1, 3), nullptr);
  EXPECT_EQ((*store.GetLatest(0, 1))[0], 6);
}

TEST(VersionedStoreTest, ForkCopiesSnapshotIntoBranch) {
  VersionedStore store;
  store.Put(0, 1, 2, Bytes({2}));
  store.Put(0, 1, 8, Bytes({8}));
  store.Put(0, 2, 3, Bytes({3}));
  EXPECT_EQ(store.ForkLoop(0, 5, 1), 2u);
  EXPECT_EQ((*store.Get(1, 1, 0))[0], 2);  // not the iteration-8 version
  EXPECT_EQ((*store.Get(1, 2, 0))[0], 3);
}

TEST(VersionedStoreTest, MergeWritesLatestAtIteration) {
  VersionedStore store;
  store.Put(1, 1, 4, Bytes({44}));
  store.Put(0, 1, 2, Bytes({2}));
  EXPECT_EQ(store.MergeLoop(1, 0, 10), 1u);
  EXPECT_EQ((*store.Get(0, 1, 10))[0], 44);
  EXPECT_EQ((*store.Get(0, 1, 9))[0], 2);
}

TEST(VersionedStoreTest, VerticesWithVersionAt) {
  VersionedStore store;
  store.Put(0, 1, 5, Bytes({1}));
  store.Put(0, 2, 6, Bytes({2}));
  const auto at5 = store.VerticesWithVersionAt(0, 5);
  ASSERT_EQ(at5.size(), 1u);
  EXPECT_EQ(at5[0], 1u);
}

TEST(VersionedStoreTest, DropLoopRemovesEverything) {
  VersionedStore store;
  store.Put(3, 1, 1, Bytes({1}));
  store.DropLoop(3);
  EXPECT_TRUE(store.VerticesOf(3).empty());
}

TEST(VersionedStoreTest, AccountingTotals) {
  VersionedStore store;
  store.Put(0, 1, 1, Bytes({1, 2, 3}));
  store.Put(0, 2, 1, Bytes({4}));
  EXPECT_EQ(store.TotalVersions(), 2u);
  EXPECT_EQ(store.TotalBytes(), 4u);
}

// ---------------------------------------------------------------------------
// CheckpointLog
// ---------------------------------------------------------------------------

class CheckpointLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/tornado_ckpt_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(CheckpointLogTest, AppendAndReplay) {
  {
    CheckpointLog log;
    ASSERT_TRUE(log.Open(path_).ok());
    ASSERT_TRUE(log.Append(0, 1, 2, Bytes({9, 9})).ok());
    ASSERT_TRUE(log.Append(0, 1, 5, Bytes({5})).ok());
    ASSERT_TRUE(log.Append(1, 7, 1, Bytes({7})).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  VersionedStore store;
  CheckpointLog reader;
  auto applied = reader.Replay(path_, &store);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 3u);
  EXPECT_EQ((*store.Get(0, 1, 2))[0], 9);
  EXPECT_EQ((*store.GetLatest(0, 1))[0], 5);
  EXPECT_EQ((*store.GetLatest(1, 7))[0], 7);
}

TEST_F(CheckpointLogTest, TornTailIsIgnored) {
  {
    CheckpointLog log;
    ASSERT_TRUE(log.Open(path_).ok());
    ASSERT_TRUE(log.Append(0, 1, 1, Bytes({1})).ok());
    ASSERT_TRUE(log.Append(0, 2, 1, Bytes({2})).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  // Corrupt the tail: truncate the last 3 bytes (mid-CRC).
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  ASSERT_EQ(std::fclose(f), 0);
  ASSERT_EQ(truncate(path_.c_str(), size - 3), 0);

  VersionedStore store;
  CheckpointLog reader;
  auto applied = reader.Replay(path_, &store);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 1u);  // only the intact first record
  EXPECT_NE(store.GetLatest(0, 1), nullptr);
  EXPECT_EQ(store.GetLatest(0, 2), nullptr);
}

TEST_F(CheckpointLogTest, ReplayMissingFileIsNotFound) {
  VersionedStore store;
  CheckpointLog reader;
  auto applied = reader.Replay(path_ + ".nope", &store);
  EXPECT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace tornado
