// Unit tests for the versioned store and the on-disk checkpoint log.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "storage/checkpoint_log.h"
#include "storage/versioned_store.h"
#include "tests/test_util.h"

namespace tornado {
namespace {

std::vector<uint8_t> Bytes(std::initializer_list<uint8_t> v) { return v; }

TEST(VersionedStoreTest, SnapshotReadsLatestAtOrBelow) {
  VersionedStore store;
  store.Put(0, 7, 1, Bytes({1}));
  store.Put(0, 7, 5, Bytes({5}));
  store.Put(0, 7, 9, Bytes({9}));

  EXPECT_FALSE(store.Get(0, 7, 0));
  EXPECT_EQ(store.Get(0, 7, 1)[0], 1);
  EXPECT_EQ(store.Get(0, 7, 4)[0], 1);
  EXPECT_EQ(store.Get(0, 7, 5)[0], 5);
  EXPECT_EQ(store.Get(0, 7, 100)[0], 9);
  EXPECT_EQ(store.GetLatest(0, 7)[0], 9);
  EXPECT_EQ(store.GetVersionIteration(0, 7, 7), 5u);
  EXPECT_EQ(store.GetVersionIteration(0, 7, 0), kNoIteration);
}

TEST(VersionedStoreTest, OverwriteSameIteration) {
  VersionedStore store;
  store.Put(0, 1, 3, Bytes({1}));
  store.Put(0, 1, 3, Bytes({2}));
  EXPECT_EQ(store.VersionCount(0, 1), 1u);
  EXPECT_EQ(store.Get(0, 1, 3)[0], 2);
}

TEST(VersionedStoreTest, FlushTracksDurabilityAndDirtyCount) {
  VersionedStore store;
  store.Put(0, 1, 1, Bytes({1}));
  store.Put(0, 2, 2, Bytes({2}));
  store.Put(0, 3, 7, Bytes({7}));
  EXPECT_EQ(store.DirtyVersions(0), 3u);
  EXPECT_EQ(store.Flush(0, 2), 2u);
  EXPECT_EQ(store.DirtyVersions(0), 1u);
  EXPECT_EQ(store.DurableIteration(0), 2u);
  // Flushing below the watermark is a no-op.
  EXPECT_EQ(store.Flush(0, 1), 0u);
  EXPECT_EQ(store.Flush(0, 10), 1u);
  EXPECT_EQ(store.DirtyVersions(0), 0u);
}

TEST(VersionedStoreTest, TruncateAfterDropsNewerVersions) {
  VersionedStore store;
  for (Iteration i = 1; i <= 5; ++i) {
    store.Put(0, 1, i, Bytes({static_cast<uint8_t>(i)}));
  }
  store.TruncateAfter(0, 3);
  EXPECT_EQ(store.VersionCount(0, 1), 3u);
  EXPECT_EQ(store.GetLatest(0, 1)[0], 3);
}

TEST(VersionedStoreTest, RecoverToDurableDropsUnflushed) {
  VersionedStore store;
  store.Put(0, 1, 1, Bytes({1}));
  store.Flush(0, 1);
  store.Put(0, 1, 2, Bytes({2}));
  store.RecoverToDurable(0);
  EXPECT_EQ(store.GetLatest(0, 1)[0], 1);

  // A never-flushed loop disappears entirely.
  store.Put(9, 1, 1, Bytes({1}));
  store.RecoverToDurable(9);
  EXPECT_FALSE(store.GetLatest(9, 1));
}

TEST(VersionedStoreTest, PruneBelowKeepsSnapshotBase) {
  VersionedStore store;
  for (Iteration i = 1; i <= 6; ++i) {
    store.Put(0, 1, i, Bytes({static_cast<uint8_t>(i)}));
  }
  EXPECT_EQ(store.PruneBelow(0, 4), 3u);  // versions 1,2,3 dropped; 4 kept
  EXPECT_EQ(store.Get(0, 1, 4)[0], 4);
  EXPECT_FALSE(store.Get(0, 1, 3));
  EXPECT_EQ(store.GetLatest(0, 1)[0], 6);
}

TEST(VersionedStoreTest, ForkCopiesSnapshotIntoBranch) {
  VersionedStore store;
  store.Put(0, 1, 2, Bytes({2}));
  store.Put(0, 1, 8, Bytes({8}));
  store.Put(0, 2, 3, Bytes({3}));
  EXPECT_EQ(store.ForkLoop(0, 5, 1), 2u);
  EXPECT_EQ(store.Get(1, 1, 0)[0], 2);  // not the iteration-8 version
  EXPECT_EQ(store.Get(1, 2, 0)[0], 3);
}

TEST(VersionedStoreTest, MergeWritesLatestAtIteration) {
  VersionedStore store;
  store.Put(1, 1, 4, Bytes({44}));
  store.Put(0, 1, 2, Bytes({2}));
  EXPECT_EQ(store.MergeLoop(1, 0, 10), 1u);
  EXPECT_EQ(store.Get(0, 1, 10)[0], 44);
  EXPECT_EQ(store.Get(0, 1, 9)[0], 2);
}

TEST(VersionedStoreTest, VerticesWithVersionAt) {
  VersionedStore store;
  store.Put(0, 1, 5, Bytes({1}));
  store.Put(0, 2, 6, Bytes({2}));
  const auto at5 = store.VerticesWithVersionAt(0, 5);
  ASSERT_EQ(at5.size(), 1u);
  EXPECT_EQ(at5[0], 1u);
}

TEST(VersionedStoreTest, DropLoopRemovesEverything) {
  VersionedStore store;
  store.Put(3, 1, 1, Bytes({1}));
  store.DropLoop(3);
  EXPECT_TRUE(store.VerticesOf(3).empty());
}

TEST(VersionedStoreTest, AccountingTotals) {
  VersionedStore store;
  store.Put(0, 1, 1, Bytes({1, 2, 3}));
  store.Put(0, 2, 1, Bytes({4}));
  EXPECT_EQ(store.TotalVersions(), 2u);
  EXPECT_EQ(store.TotalBytes(), 4u);
}

TEST(VersionedStoreTest, OverwriteStoresTheNewBytes) {
  // Regression: the old map-based Put moved the value into an emplace probe
  // and could write a moved-from (empty) vector on the overwrite path,
  // depending on the stdlib's emplace key-extraction behavior. The arena
  // design consumes the argument bytes before any bookkeeping, so the
  // overwritten version must always carry the new payload.
  VersionedStore store;
  store.Put(0, 1, 3, Bytes({1, 2, 3, 4}));
  store.Put(0, 1, 3, Bytes({9, 8, 7}));
  const VersionView got = store.Get(0, 1, 3);
  ASSERT_TRUE(got);
  EXPECT_EQ(got.ToVector(), Bytes({9, 8, 7}));
  EXPECT_EQ(store.VersionCount(0, 1), 1u);
  EXPECT_EQ(store.TotalBytes(), 3u);  // the old 4 bytes are garbage now
}

TEST(VersionedStoreTest, PruneBelowBetweenVersionsKeepsNewestAtOrBelow) {
  // The fork point (iteration 7) falls between versions 5 and 9: exactly
  // the newest version <= 7 must survive as the snapshot base.
  VersionedStore store;
  store.Put(0, 1, 2, Bytes({2}));
  store.Put(0, 1, 5, Bytes({5}));
  store.Put(0, 1, 9, Bytes({9}));
  EXPECT_EQ(store.PruneBelow(0, 7), 1u);  // only version 2 drops
  EXPECT_FALSE(store.Get(0, 1, 4));
  EXPECT_EQ(store.Get(0, 1, 7)[0], 5);
  EXPECT_EQ(store.GetVersionIteration(0, 1, 7), 5u);
  EXPECT_EQ(store.VersionCount(0, 1), 2u);
}

TEST(VersionedStoreTest, TruncateAfterRestoresDirtyAcrossDurableWatermark) {
  VersionedStore store;
  store.Put(0, 1, 1, Bytes({1}));
  store.Put(0, 1, 2, Bytes({2}));
  store.Flush(0, 2);
  store.Put(0, 1, 3, Bytes({3}));
  store.Put(0, 1, 4, Bytes({4}));
  EXPECT_EQ(store.DirtyVersions(0), 2u);

  // Dropping one dirty version restores the pending-I/O count.
  store.TruncateAfter(0, 3);
  EXPECT_EQ(store.DirtyVersions(0), 1u);
  EXPECT_EQ(store.DurableIteration(0), 2u);

  // Truncating below the watermark drops the remaining dirty version and a
  // durable one: dirty hits zero (not negative) and the watermark follows
  // the truncation point down.
  store.TruncateAfter(0, 1);
  EXPECT_EQ(store.DirtyVersions(0), 0u);
  EXPECT_EQ(store.DurableIteration(0), 1u);
  EXPECT_EQ(store.GetLatest(0, 1)[0], 1);

  // A re-put above the lowered watermark counts as dirty again.
  store.Put(0, 1, 2, Bytes({22}));
  EXPECT_EQ(store.DirtyVersions(0), 1u);
}

TEST(VersionedStoreTest, ForkMergeRoundTripSurvivesArenaCompaction) {
  VersionedStore store;
  // 50 versions x 256 bytes; pruning 49 of them leaves ~12.5 KiB of
  // garbage against ~0.5 KiB live — well past the compaction trigger.
  for (Iteration i = 1; i <= 50; ++i) {
    store.Put(0, 1, i, std::vector<uint8_t>(256, static_cast<uint8_t>(i)));
  }
  store.Put(0, 2, 10, Bytes({42}));
  EXPECT_EQ(store.ArenaCompactions(0), 0u);
  EXPECT_EQ(store.PruneBelow(0, 50), 49u);
  EXPECT_GE(store.ArenaCompactions(0), 1u);
  // The compacted arena holds exactly the live bytes.
  EXPECT_EQ(store.ArenaBytes(0), 256u + 1u);

  // Reads after compaction see the surviving payloads at their new offsets.
  const VersionView kept = store.GetLatest(0, 1);
  ASSERT_TRUE(kept);
  ASSERT_EQ(kept.size(), 256u);
  EXPECT_EQ(kept[0], 50);

  // Fork out of the compacted arena, then merge back into a third loop:
  // payload bytes must round-trip across both arena copies.
  EXPECT_EQ(store.ForkLoop(0, 50, 1), 2u);
  EXPECT_EQ(store.Get(1, 1, 0).ToVector(),
            std::vector<uint8_t>(256, uint8_t{50}));
  EXPECT_EQ(store.Get(1, 2, 0)[0], 42);
  EXPECT_EQ(store.MergeLoop(1, 2, 7), 2u);
  EXPECT_EQ(store.Get(2, 1, 7).ToVector(),
            std::vector<uint8_t>(256, uint8_t{50}));
  EXPECT_EQ(store.Get(2, 2, 7)[0], 42);
}

// ---------------------------------------------------------------------------
// CheckpointLog
// ---------------------------------------------------------------------------

class CheckpointLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/tornado_ckpt_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(CheckpointLogTest, AppendAndReplay) {
  {
    CheckpointLog log;
    ASSERT_TRUE(log.Open(path_).ok());
    ASSERT_TRUE(log.Append(0, 1, 2, Bytes({9, 9})).ok());
    ASSERT_TRUE(log.Append(0, 1, 5, Bytes({5})).ok());
    ASSERT_TRUE(log.Append(1, 7, 1, Bytes({7})).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  VersionedStore store;
  CheckpointLog reader;
  auto applied = reader.Replay(path_, &store);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 3u);
  EXPECT_EQ(store.Get(0, 1, 2)[0], 9);
  EXPECT_EQ(store.GetLatest(0, 1)[0], 5);
  EXPECT_EQ(store.GetLatest(1, 7)[0], 7);
}

TEST_F(CheckpointLogTest, TornTailIsIgnored) {
  {
    CheckpointLog log;
    ASSERT_TRUE(log.Open(path_).ok());
    ASSERT_TRUE(log.Append(0, 1, 1, Bytes({1})).ok());
    ASSERT_TRUE(log.Append(0, 2, 1, Bytes({2})).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  // Corrupt the tail: truncate the last 3 bytes (mid-CRC).
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  ASSERT_EQ(std::fclose(f), 0);
  ASSERT_EQ(truncate(path_.c_str(), size - 3), 0);

  VersionedStore store;
  CheckpointLog reader;
  auto applied = reader.Replay(path_, &store);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 1u);  // only the intact first record
  EXPECT_TRUE(store.GetLatest(0, 1));
  EXPECT_FALSE(store.GetLatest(0, 2));
}

TEST_F(CheckpointLogTest, ReplayMissingFileIsNotFound) {
  VersionedStore store;
  CheckpointLog reader;
  auto applied = reader.Replay(path_ + ".nope", &store);
  EXPECT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace tornado
