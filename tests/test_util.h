#ifndef TORNADO_TESTS_TEST_UTIL_H_
#define TORNADO_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "check/invariant_checker.h"
#include "common/logging.h"
#include "core/cluster.h"

namespace tornado {

/// Quiets INFO logging for the duration of a test binary.
class QuietLogs : public ::testing::Environment {
 public:
  void SetUp() override { SetLogLevel(LogLevel::kWarning); }
};

inline const ::testing::Environment* const kQuietLogs =
    ::testing::AddGlobalTestEnvironment(new QuietLogs);

/// Attaches `checker` to every processor's engine events. Call before
/// cluster.Start() so no event is missed.
inline void AttachChecker(TornadoCluster& cluster, CheckObserver& checker) {
  cluster.AddEngineObserver(&checker);
}

/// Runs the checker's structural invariants over every processor of the
/// (idle) cluster.
inline void DeepCheckAll(TornadoCluster& cluster, CheckObserver& checker) {
  for (uint32_t p = 0; p < cluster.config().num_processors; ++p) {
    checker.DeepCheck(cluster.processor(p).sessions());
  }
}

}  // namespace tornado

#endif  // TORNADO_TESTS_TEST_UTIL_H_
