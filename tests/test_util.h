#ifndef TORNADO_TESTS_TEST_UTIL_H_
#define TORNADO_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "common/logging.h"

namespace tornado {

/// Quiets INFO logging for the duration of a test binary.
class QuietLogs : public ::testing::Environment {
 public:
  void SetUp() override { SetLogLevel(LogLevel::kWarning); }
};

inline const ::testing::Environment* const kQuietLogs =
    ::testing::AddGlobalTestEnvironment(new QuietLogs);

}  // namespace tornado

#endif  // TORNADO_TESTS_TEST_UTIL_H_
