// End-to-end connected components on the Tornado engine, validated
// against a union-find reference over the emitted edge stream.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <numeric>

#include "algos/connected_components.h"
#include "core/cluster.h"
#include "stream/graph_stream.h"
#include "tests/test_util.h"

namespace tornado {
namespace {

/// Minimal union-find with min-label compression as the oracle.
class UnionFind {
 public:
  VertexId Find(VertexId v) {
    auto it = parent_.find(v);
    if (it == parent_.end()) {
      parent_[v] = v;
      return v;
    }
    if (it->second == v) return v;
    const VertexId root = Find(it->second);
    parent_[v] = root;
    return root;
  }

  void Union(VertexId a, VertexId b) {
    const VertexId ra = Find(a), rb = Find(b);
    if (ra == rb) return;
    // Smaller id becomes the root, matching min-label propagation.
    parent_[std::max(ra, rb)] = std::min(ra, rb);
  }

  std::map<VertexId, VertexId> parent_;
};

class CcEngineTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CcEngineTest, LabelsMatchUnionFind) {
  GraphStreamOptions options;
  options.num_vertices = 250;
  options.num_tuples = 1200;
  options.deletion_ratio = 0.0;  // label propagation is insert-only exact
  options.seed = GetParam();

  JobConfig config;
  config.program = std::make_shared<ConnectedComponentsProgram>();
  config.router = ConnectedComponentsProgram::MakeRouter();
  config.delay_bound = GetParam() % 2 == 0 ? 1 : 64;
  config.num_processors = 4;
  config.num_hosts = 2;
  config.ingest_rate = 60000.0;
  config.seed = GetParam() + 100;

  TornadoCluster cluster(config, std::make_unique<GraphStream>(options));
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilEmitted(options.num_tuples, 600.0));
  cluster.ingester().Pause();
  cluster.RunFor(2.0);

  const uint64_t query = cluster.ingester().SubmitQuery();
  ASSERT_TRUE(cluster.RunUntilQueryDone(query, 600.0));
  const LoopId branch = cluster.BranchOf(query);

  UnionFind oracle;
  GraphStream replay(options);
  while (auto tuple = replay.Next()) {
    const auto& edge = std::get<EdgeDelta>(tuple->delta);
    oracle.Union(edge.src, edge.dst);
  }

  size_t checked = 0;
  for (const auto& [v, parent] : oracle.parent_) {
    auto state = cluster.ReadVertexState(branch, v);
    ASSERT_NE(state, nullptr) << "vertex " << v;
    EXPECT_EQ(static_cast<const ComponentState&>(*state).label,
              oracle.Find(v))
        << "vertex " << v;
    ++checked;
  }
  EXPECT_GT(checked, 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CcEngineTest, ::testing::Range<uint64_t>(1, 6));

}  // namespace
}  // namespace tornado
