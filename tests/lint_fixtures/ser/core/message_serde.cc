// Fixture: the serde registry the SER-001 rule cross-checks messages.h
// against. Never compiled, only scanned.
#include "core/messages.h"

namespace fixture {

void RegisterAll() {
  TORNADO_MESSAGE_SERDE(RegisteredMsg);
  TORNADO_MESSAGE_SERDE(TracedEnvelopeMsg);
  // OrphanMsg deliberately absent.
}

}  // namespace fixture
