// Fixture: SER-001 (serde registry coverage). A miniature messages.h;
// never compiled, only scanned.
#ifndef FIXTURE_MESSAGES_H_
#define FIXTURE_MESSAGES_H_

namespace fixture {

struct Payload {
  virtual ~Payload() = default;
};

struct RegisteredMsg : Payload {
  int value = 0;
};

struct OrphanMsg : Payload {  // fires: missing from the registry below
  int value = 0;
};

struct NotAMessage {  // ignored: does not derive from Payload
  int value = 0;
};

}  // namespace fixture

#endif  // FIXTURE_MESSAGES_H_
