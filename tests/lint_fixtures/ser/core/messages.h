// Fixture: SER-001 (serde registry coverage). A miniature messages.h;
// never compiled, only scanned.
#ifndef FIXTURE_MESSAGES_H_
#define FIXTURE_MESSAGES_H_

namespace fixture {

struct Payload {
  virtual ~Payload() = default;
};

struct RegisteredMsg : Payload {
  int value = 0;
};

struct OrphanMsg : Payload {  // fires: missing from the registry below
  int value = 0;
};

// Trace-carrying payload: cause_id rides in the serde envelope, not in a
// per-message field list, so a registered message with trace metadata
// must scan exactly like any other registered message.
struct TracedEnvelopeMsg : Payload {
  unsigned long long cause_id = 0;
  int value = 0;
};

struct NotAMessage {  // ignored: does not derive from Payload
  int value = 0;
};

}  // namespace fixture

#endif  // FIXTURE_MESSAGES_H_
