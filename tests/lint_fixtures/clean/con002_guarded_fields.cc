// Fixture: a mutex-holding class with every member after the mutex
// annotated (or legitimately exempt). Never compiled, only scanned.
namespace fixture {

#define GUARDED_BY(x)
#define PT_GUARDED_BY(x)

class Mutex {};

class Sessions {
 private:
  const int capacity_ = 8;  // immutable, and declared above the mutex
  Mutex mu_;
  long long opened_ GUARDED_BY(mu_);
  long long* latest_ PT_GUARDED_BY(mu_);
};

}  // namespace fixture
