// Fixture: the CON-001-clean way to lock — the annotated wrappers from
// common/mutex.h (mimicked locally; the file is never compiled, only
// scanned). No std:: primitive is named, so nothing fires.
namespace fixture {

#define GUARDED_BY(x)

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
};

class Guarded {
 public:
  void Inc() {
    const MutexLock lock(&mu_);
    ++n_;
  }

 private:
  Mutex mu_;
  long long n_ GUARDED_BY(mu_);
};

}  // namespace fixture
