// KER-001 clean fixture: kernel-layer state held in the SoA containers.
namespace fixture {

template <typename K, typename V, unsigned N>
class FlatMap {};

struct KernelState {
  FlatMap<unsigned long, double, 8> contributions;
};

}  // namespace fixture
