// Fixture: a file with none of the linted hazards; a scan of this
// directory alone must exit 0 with zero findings.
#include <map>
#include <vector>

namespace fixture {

struct FakeNet {
  void Send(int dst);
};

void Drain(FakeNet* net, const std::map<int, int>& ordered) {
  for (const auto& [dst, cost] : ordered) {  // ordered container: fine
    net->Send(dst + cost);
  }
}

std::vector<int> Touch() { return {1, 2, 3}; }

}  // namespace fixture
