// Fixture: the CON-003-clean shape — timed work goes through the
// substrate scheduler, and thread handles are joined at shutdown, never
// detached. Never compiled, only scanned.
namespace fixture {

struct Scheduler {
  void ScheduleAfter(double delay, void (*fn)());
};

struct Worker {
  void join();
};

void Poll(Scheduler* sched, void (*tick)()) {
  sched->ScheduleAfter(0.010, tick);
}

void Shutdown(Worker& w) { w.join(); }

}  // namespace fixture
