// Fixture: CON-002 (mutex-holding class with unguarded members). The
// local Mutex type and annotation macro mimic common/mutex.h — the file
// is never compiled, only scanned.
namespace fixture {

#define GUARDED_BY(x)

class Mutex {};

class Counters {
 public:
  void Inc();

 private:
  Mutex mu_;
  long long good_ GUARDED_BY(mu_);
  long long bad_;  // fires: declared after mu_ without GUARDED_BY
  // NOLINTNEXTLINE(CON-002): fixture exercising the suppression path.
  long long tolerated_;
};

}  // namespace fixture
