// Fixture: DET-004 (pointer-keyed ordered containers). Never compiled,
// only scanned.
#include <map>
#include <set>

namespace fixture {

struct Widget {};

std::map<Widget*, int> by_widget;  // fires: order = allocation order
std::set<const Widget*> widget_set;  // fires

// NOLINTNEXTLINE(DET-004): fixture exercising the suppression path.
std::map<Widget*, int> suppressed_map;

}  // namespace fixture
