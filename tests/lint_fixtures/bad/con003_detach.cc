// Fixture: CON-003 (detached threads / raw sleeps outside the
// substrate). Never compiled, only scanned. Worker stands in for any
// thread-like handle — the rule keys on the detach() member call, not
// the type.
#include <chrono>
#include <thread>

namespace fixture {

struct Worker {
  void detach();
};

void FireAndForget(Worker& w) {
  w.detach();  // fires
}

void NapBetweenPolls() {
  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // fires
}

void SuppressedNap() {
  // NOLINTNEXTLINE(CON-003): fixture exercising the suppression path.
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

}  // namespace fixture
