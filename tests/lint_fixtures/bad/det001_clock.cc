// Fixture: DET-001 (wall-clock sources). Never compiled, only scanned.
#include <chrono>
#include <ctime>

namespace fixture {

double WallSeconds() {
  auto now = std::chrono::system_clock::now();  // fires
  (void)now;
  return static_cast<double>(time(nullptr));  // fires (call form)
}

double SuppressedWall() {
  // NOLINTNEXTLINE(DET-001): fixture exercising the suppression path.
  auto t = std::chrono::steady_clock::now();
  (void)t;
  return 0.0;
}

double ReasonlessSuppression() {
  auto t = std::chrono::steady_clock::now();  // NOLINT(DET-001)
  (void)t;  // the marker above has no reason, so the finding stands
  return 0.0;
}

}  // namespace fixture
