// Fixture: DET-003 (unordered iteration feeding the network). Never
// compiled, only scanned. The Send( call below marks this file as one
// that puts protocol messages on the wire.
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct FakeNet {
  void Send(int dst);
};

struct Router {
  std::unordered_map<int, int> routes_;
  std::unordered_set<int> peers_;
  FakeNet net_;

  void Flood() {
    for (const auto& [dst, cost] : routes_) {  // fires
      net_.Send(dst + cost);
    }
    for (int peer : peers_) {  // fires
      net_.Send(peer);
    }
    // NOLINTNEXTLINE(DET-003): fixture exercising the suppression path.
    for (const auto& [dst, cost] : routes_) {
      net_.Send(dst);
    }
  }
};

}  // namespace fixture
