// Fixture: CON-001 (raw synchronization primitives above the seam).
// Never compiled, only scanned.
#include <mutex>
#include <thread>

namespace fixture {

class RawLocked {
 public:
  void Touch() {
    std::lock_guard<std::mutex> lock(mu_);  // fires (twice: guard + mutex)
    ++n_;
  }

 private:
  std::mutex mu_;  // fires
  int n_ = 0;
};

void SuppressedPrimitive() {
  // NOLINTNEXTLINE(CON-001): fixture exercising the suppression path.
  std::mutex local;
  (void)local;
}

}  // namespace fixture
