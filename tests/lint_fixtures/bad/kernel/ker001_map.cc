// KER-001 fixture: node-per-entry containers inside the kernel layer.
// The path contains "kernel/" the same way src/kernel/ does.
#include <map>
#include <unordered_map>

namespace fixture {

struct KernelState {
  std::map<unsigned long, double> contributions;            // fires
  std::unordered_map<unsigned long, double> scratch;        // fires
  // NOLINTNEXTLINE(KER-001): fixture exercising the suppression path.
  std::map<unsigned long, double> suppressed_contributions;
};

}  // namespace fixture
