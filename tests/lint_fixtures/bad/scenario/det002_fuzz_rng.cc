// Fixture: ad-hoc randomness in a scenario-subsystem path. The scenario
// fuzzer's mutation logic deliberately lives in src/scenario — NOT the
// DET-exempt tools/ directory — precisely so that DET-002 fires on
// host-entropy draws like these instead of silently allowing them.
namespace fixture {

inline unsigned BadMutationDraw() {
  return static_cast<unsigned>(rand());
}

inline unsigned BadMutationSeed() {
  return std::random_device{}();
}

}  // namespace fixture
