// Fixture: DET-002 (ad-hoc randomness). Never compiled, only scanned.
#include <cstdlib>
#include <random>

namespace fixture {

int HostEntropy() {
  std::random_device rd;  // fires
  (void)rd;
  return rand();  // fires (hidden global state)
}

int Suppressed() {
  // NOLINTNEXTLINE(DET-002): fixture exercising the suppression path.
  std::mt19937 gen(12345);
  return static_cast<int>(gen());
}

}  // namespace fixture
