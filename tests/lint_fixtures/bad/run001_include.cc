// Fixture: RUN-001 (substrate layering). Never compiled, only scanned.
// This file does not live under src/sim, src/net, or src/runtime/sim_*,
// so naming the concrete substrate headers must fire.
#include "sim/event_loop.h"  // fires
#include "net/network.h"     // fires

// NOLINTNEXTLINE(RUN-001): fixture exercising the suppression path.
#include "sim/event_loop.h"

namespace fixture {

void UseLoop() {}

}  // namespace fixture
