// Unit tests for the comparator engines: results must be exact; latency
// relationships must reflect the execution models (Section 6.5 shapes).

#include <gtest/gtest.h>

#include <memory>

#include "baselines/graph_baselines.h"
#include "baselines/ml_baselines.h"
#include "stream/graph_stream.h"
#include "stream/instance_stream.h"
#include "stream/point_stream.h"
#include "tests/test_util.h"

namespace tornado {
namespace {

GraphStreamOptions Graph(uint64_t tuples) {
  GraphStreamOptions options;
  options.num_vertices = 300;
  options.num_tuples = tuples;
  options.deletion_ratio = 0.05;
  options.seed = 9;
  return options;
}

template <typename Engine>
void Feed(Engine& engine, StreamSource& stream, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    auto tuple = stream.Next();
    if (!tuple.has_value()) break;
    engine.Ingest(*tuple);
  }
}

TEST(SsspBaselineTest, AllModelsComputeTheExactFixedPoint) {
  const auto options = Graph(2000);
  DynamicGraph reference;
  {
    GraphStream replay(options);
    while (auto tuple = replay.Next()) {
      reference.Apply(std::get<EdgeDelta>(tuple->delta));
    }
  }
  const auto expected = reference.ShortestPaths(0);

  for (ExecutionModel model :
       {ExecutionModel::kSparkLike, ExecutionModel::kGraphLabLike,
        ExecutionModel::kNaiadLike, ExecutionModel::kIncremental}) {
    SsspBaseline engine(model, 0, BaselineCostModel{});
    GraphStream stream(options);
    Feed(engine, stream, options.num_tuples);
    auto result = engine.Query();
    ASSERT_TRUE(result.ok);
    EXPECT_GT(result.latency, 0.0);
    EXPECT_EQ(engine.last_result().size(), expected.size());
    for (const auto& [v, d] : expected) {
      EXPECT_NEAR(engine.last_result().at(v), d, 1e-9);
    }
  }
}

TEST(SsspBaselineTest, IncrementalQueriesGetCheaperWithSmallerBatches) {
  const auto options = Graph(4000);
  SsspBaseline big(ExecutionModel::kIncremental, 0, BaselineCostModel{});
  SsspBaseline small(ExecutionModel::kIncremental, 0, BaselineCostModel{});

  // Engine `big` queries once after 4000 tuples (one huge batch after a
  // warm-up fixed point); `small` queries every 200 tuples.
  GraphStream sa(options), sb(options);
  Feed(big, sa, 2000);
  (void)big.Query();  // warm fixed point
  Feed(big, sa, 2000);
  const double big_latency = big.Query().latency;

  Feed(small, sb, 2000);
  (void)small.Query();
  double last_small = 0.0;
  for (int i = 0; i < 10; ++i) {
    Feed(small, sb, 200);
    last_small = small.Query().latency;
  }
  EXPECT_LT(last_small, big_latency)
      << "smaller batches should be cheaper to absorb";
}

TEST(SsspBaselineTest, SparkIsSlowerThanGraphLab) {
  const auto options = Graph(3000);
  SsspBaseline spark(ExecutionModel::kSparkLike, 0, BaselineCostModel{});
  SsspBaseline graphlab(ExecutionModel::kGraphLabLike, 0, BaselineCostModel{});
  GraphStream sa(options), sb(options);
  Feed(spark, sa, options.num_tuples);
  Feed(graphlab, sb, options.num_tuples);
  EXPECT_GT(spark.Query().latency, graphlab.Query().latency);
}

TEST(PageRankBaselineTest, WarmStartUsesFewerIterations) {
  const auto options = Graph(3000);
  PageRankBaseline incremental(ExecutionModel::kIncremental, 0.85, 1e-6,
                               BaselineCostModel{});
  GraphStream stream(options);
  Feed(incremental, stream, 2800);
  const auto cold = incremental.Query();
  Feed(incremental, stream, 200);
  const auto warm = incremental.Query();
  EXPECT_LT(warm.iterations, cold.iterations);
}

TEST(PageRankBaselineTest, NaiadDegradesWithEpochs) {
  const auto options = Graph(5000);
  BaselineCostModel trace_heavy;
  trace_heavy.per_trace_unit = 2e-5;  // amplified so the asymptotic trend
                                      // is visible at unit-test scale
  PageRankBaseline naiad(ExecutionModel::kNaiadLike, 0.85, 1e-6, trace_heavy);
  GraphStream stream(options);
  Feed(naiad, stream, 1000);
  double last = 0.0;
  for (int i = 0; i < 8; ++i) {
    Feed(naiad, stream, 500);
    last = naiad.Query().latency;
  }

  // The paper's observation (Section 6.5): after enough epochs the
  // trace-combination cost makes incremental PageRank *slower than
  // recomputing from scratch* in the GraphLab-like engine.
  PageRankBaseline graphlab(ExecutionModel::kGraphLabLike, 0.85, 1e-6,
                            BaselineCostModel{});
  GraphStream replay(options);
  Feed(graphlab, replay, 1000 + 8 * 500);
  EXPECT_GT(last, graphlab.Query().latency)
      << "accumulated traces should eventually lose to from-scratch";
}

TEST(KMeansBaselineTest, ComputesLloydFixedPointAndNaiadRunsOutOfMemory) {
  PointStreamOptions options;
  options.num_tuples = 3000;
  options.num_clusters = 4;
  options.dimensions = 4;
  options.seed = 3;

  BaselineCostModel cost;
  cost.trace_memory_cap = 10000;  // small budget: OOM after a few epochs
  KMeansBaseline naiad(ExecutionModel::kNaiadLike, 4, 4, 1e-4, cost);
  KMeansBaseline incremental(ExecutionModel::kIncremental, 4, 4, 1e-4,
                             BaselineCostModel{});
  PointStream sa(options), sb(options);
  Feed(naiad, sa, 1500);
  Feed(incremental, sb, 1500);

  bool oomed = false;
  for (int i = 0; i < 6 && !oomed; ++i) {
    Feed(naiad, sa, 200);
    auto result = naiad.Query();
    oomed = !result.ok;
  }
  EXPECT_TRUE(oomed) << "Naiad-like KMeans should exceed its memory budget";

  auto result = incremental.Query();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(incremental.last_centroids().size(), 4u);
}

TEST(SgdBaselineTest, SolvesToLowObjectiveAndWarmStartHelps) {
  InstanceStreamOptions options;
  options.num_tuples = 2000;
  options.dimensions = 8;
  options.label_noise = 0.0;
  options.seed = 41;

  SgdBaseline spark(ExecutionModel::kSparkLike, SgdLoss::kSvmHinge, 8, 1.0,
                    1e-4, BaselineCostModel{});
  SgdBaseline incremental(ExecutionModel::kIncremental, SgdLoss::kSvmHinge, 8,
                          1.0, 1e-4, BaselineCostModel{});
  InstanceStream sa(options), sb(options);
  Feed(spark, sa, 1800);
  Feed(incremental, sb, 1800);
  const auto cold = spark.Query();
  (void)incremental.Query();
  Feed(spark, sa, 200);
  Feed(incremental, sb, 200);
  const auto spark_again = spark.Query();
  const auto warm = incremental.Query();

  ASSERT_TRUE(warm.ok);
  EXPECT_LT(warm.iterations, spark_again.iterations)
      << "warm start should need fewer GD iterations than from-scratch";
  EXPECT_GT(cold.iterations, 1u);
  // The learned separator classifies the training stream well.
  const auto& w = incremental.last_weights();
  InstanceStream check(options);
  size_t correct = 0, total = 0;
  while (auto tuple = check.Next()) {
    const auto& inst = std::get<InstanceDelta>(tuple->delta);
    double dot = 0.0;
    for (const auto& [idx, value] : inst.features) dot += w[idx] * value;
    if ((dot >= 0.0 ? 1.0 : -1.0) == inst.label) ++correct;
    ++total;
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.9);
}

}  // namespace
}  // namespace tornado
