// Exercises the tornado_lint binary against fixture files with known-bad
// snippets: every rule must fire on its fixture, NOLINT/NOLINTNEXTLINE
// with a reason must suppress, and the real src/ tree must scan clean.
//
// The binary path and fixture directory come in through compile
// definitions (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

#include "tests/test_util.h"

namespace tornado {
namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun RunLint(const std::string& args) {
  const std::string cmd =
      std::string(TORNADO_LINT_BIN) + " " + args + " 2>&1";
  LintRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  std::array<char, 4096> buf;
  size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    run.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

std::string Fixtures(const std::string& sub = "") {
  std::string path = TORNADO_LINT_FIXTURES;
  if (!sub.empty()) path += "/" + sub;
  return path;
}

// Count of JSON finding lines naming `rule` with the given suppression
// state (the --json writer emits one finding per line).
int CountFindings(const std::string& json, const std::string& rule,
                  bool suppressed) {
  const std::string rule_key = "\"rule\": \"" + rule + "\"";
  const std::string supp_key =
      std::string("\"suppressed\": ") + (suppressed ? "true" : "false");
  int count = 0;
  size_t pos = 0;
  while ((pos = json.find(rule_key, pos)) != std::string::npos) {
    const size_t eol = json.find('\n', pos);
    const std::string line = json.substr(pos, eol - pos);
    if (line.find(supp_key) != std::string::npos) ++count;
    pos += rule_key.size();
  }
  return count;
}

TEST(LintTest, EveryRuleFiresOnItsFixture) {
  const LintRun run = RunLint("--json " + Fixtures());
  ASSERT_EQ(run.exit_code, 1) << run.output;
  for (const char* rule :
       {"DET-001", "DET-002", "DET-003", "DET-004", "SER-001", "RUN-001",
        "CON-001", "CON-002", "CON-003", "KER-001"}) {
    EXPECT_GE(CountFindings(run.output, rule, /*suppressed=*/false), 1)
        << rule << " did not fire:\n" << run.output;
  }
}

TEST(LintTest, NolintWithReasonSuppresses) {
  const LintRun run = RunLint("--json " + Fixtures());
  ASSERT_EQ(run.exit_code, 1) << run.output;
  for (const char* rule : {"DET-001", "DET-002", "DET-003", "DET-004",
                           "RUN-001", "CON-001", "CON-002", "CON-003",
                           "KER-001"}) {
    EXPECT_GE(CountFindings(run.output, rule, /*suppressed=*/true), 1)
        << rule << " suppression fixture not honored:\n" << run.output;
  }
  EXPECT_NE(run.output.find("fixture exercising the suppression path"),
            std::string::npos)
      << "suppression reasons must be carried into the report";
}

// Each CON bad fixture must trigger exactly its own rule — a fixture
// that trips a neighboring rule would make the per-rule counts above
// meaningless.
TEST(LintTest, ConFixturesAreRulePure) {
  const struct {
    const char* file;
    const char* rule;
  } kCases[] = {
      {"bad/con001_raw_mutex.cc", "CON-001"},
      {"bad/con002_unannotated_field.cc", "CON-002"},
      {"bad/con003_detach.cc", "CON-003"},
  };
  for (const auto& c : kCases) {
    const LintRun run = RunLint("--json " + Fixtures(c.file));
    EXPECT_EQ(run.exit_code, 1) << c.file << ":\n" << run.output;
    EXPECT_GE(CountFindings(run.output, c.rule, /*suppressed=*/false), 1)
        << c.file << ":\n" << run.output;
    for (const char* other : {"DET-001", "DET-002", "DET-003", "DET-004",
                              "SER-001", "RUN-001", "CON-001", "CON-002",
                              "CON-003", "KER-001"}) {
      if (std::string(other) == c.rule) continue;
      EXPECT_EQ(CountFindings(run.output, other, /*suppressed=*/false), 0)
          << c.file << " unexpectedly fired " << other << ":\n"
          << run.output;
    }
  }
}

// std::atomic sightings are warnings: reported in the output, but they
// do not gate (exit 0 when the only findings are warnings).
TEST(LintTest, AtomicIsAWarningAndDoesNotGate) {
  const std::string path = ::testing::TempDir() + "lint_atomic_fixture.cc";
  {
    std::ofstream out(path);
    out << "namespace fixture {\n"
        << "struct Progress {\n"
        << "  std::atomic<long long> emitted{0};\n"
        << "};\n"
        << "}  // namespace fixture\n";
  }
  const LintRun run = RunLint("--json " + path);
  std::remove(path.c_str());
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_GE(CountFindings(run.output, "CON-001", /*suppressed=*/false), 1)
      << run.output;
  EXPECT_NE(run.output.find("\"severity\": \"warning\""), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("\"unsuppressed_errors\": 0"),
            std::string::npos)
      << run.output;
}

// The scenario fuzzer's randomness lives in src/scenario so DET-002
// covers it (tools/ is exempt). This fixture's path contains "scenario/"
// the same way the real sources do — ad-hoc RNG there must be caught.
TEST(LintTest, Det002CoversScenarioSubsystemPaths) {
  const LintRun run =
      RunLint("--json " + Fixtures("bad/scenario/det002_fuzz_rng.cc"));
  ASSERT_EQ(run.exit_code, 1) << run.output;
  EXPECT_GE(CountFindings(run.output, "DET-002", /*suppressed=*/false), 2)
      << run.output;
}

// KER-001's two halves: node containers in kernel-layer C++, and
// fast-math flags in CMake listfiles (live flags fire, commented-out
// flags do not).
TEST(LintTest, Ker001FlagsKernelMapsAndFastMath) {
  const LintRun cc = RunLint("--json " + Fixtures("bad/kernel/ker001_map.cc"));
  ASSERT_EQ(cc.exit_code, 1) << cc.output;
  EXPECT_EQ(CountFindings(cc.output, "KER-001", /*suppressed=*/false), 2)
      << cc.output;
  EXPECT_EQ(CountFindings(cc.output, "KER-001", /*suppressed=*/true), 1)
      << cc.output;

  const LintRun cmake =
      RunLint("--json " + Fixtures("bad/kernel/CMakeLists.txt"));
  ASSERT_EQ(cmake.exit_code, 1) << cmake.output;
  // One -ffast-math and one -funsafe-math-optimizations; the flag in a
  // `#` comment must not count.
  EXPECT_EQ(CountFindings(cmake.output, "KER-001", /*suppressed=*/false), 2)
      << cmake.output;
  EXPECT_NE(cmake.output.find("bit-identical"), std::string::npos)
      << cmake.output;
}

// A node container outside kernel/ paths is DET/CON territory, not
// KER-001's — the rule must stay scoped to the SoA layer.
TEST(LintTest, Ker001IgnoresMapsOutsideKernelPaths) {
  const LintRun run = RunLint("--json " + Fixtures("bad/det004_ptrkey.cc"));
  ASSERT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountFindings(run.output, "KER-001", /*suppressed=*/false), 0)
      << run.output;
}

TEST(LintTest, NolintWithoutReasonDoesNotSuppress) {
  const LintRun run = RunLint("--json " + Fixtures("bad/det001_clock.cc"));
  ASSERT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("carries no reason"), std::string::npos)
      << run.output;
}

TEST(LintTest, SerRuleNamesTheOrphanStruct) {
  const LintRun run = RunLint("--json " + Fixtures("ser"));
  ASSERT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("OrphanMsg"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find("\"rule\": \"SER-001\", \"message\": "
                            "\"wire message `RegisteredMsg`"),
            std::string::npos)
      << "registered struct must not be reported:\n" << run.output;
  EXPECT_EQ(run.output.find("TracedEnvelopeMsg"), std::string::npos)
      << "registered trace-payload struct must not be reported:\n"
      << run.output;
}

TEST(LintTest, CleanFixtureScansClean) {
  const LintRun run = RunLint("--json " + Fixtures("clean"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("\"unsuppressed\": 0"), std::string::npos)
      << run.output;
}

TEST(LintTest, FixHintsNameTheRemedy) {
  const LintRun run = RunLint("--fix-hints " + Fixtures("bad"));
  ASSERT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("hint: "), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("common/ordered.h"), std::string::npos)
      << run.output;
}

// --fix-hints also prints the paste-ready escape hatch, per rule.
TEST(LintTest, FixHintsPrintTheSuppressionSyntax) {
  const LintRun run = RunLint("--fix-hints " + Fixtures("bad"));
  ASSERT_EQ(run.exit_code, 1) << run.output;
  for (const char* rule : {"CON-001", "CON-002", "CON-003"}) {
    EXPECT_NE(run.output.find("suppress: // NOLINT(" + std::string(rule) +
                              "): <why this is safe>"),
              std::string::npos)
        << rule << ":\n" << run.output;
  }
}

// The SARIF output must carry the rule table and one result per
// unsuppressed finding, in the 2.1.0 shape CI uploads as an artifact.
TEST(LintTest, SarifOutputHasRulesAndResults) {
  const LintRun run = RunLint("--sarif " + Fixtures("bad"));
  ASSERT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("\"version\": \"2.1.0\""), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("\"name\": \"tornado_lint\""), std::string::npos)
      << run.output;
  for (const char* rule : {"DET-001", "CON-001", "CON-002", "CON-003"}) {
    EXPECT_NE(run.output.find("{\"id\": \"" + std::string(rule) + "\""),
              std::string::npos)
        << rule << " missing from driver.rules:\n" << run.output;
    EXPECT_NE(run.output.find("{\"ruleId\": \"" + std::string(rule) + "\""),
              std::string::npos)
        << rule << " missing from results:\n" << run.output;
  }
  // Suppressed findings stay out of the artifact.
  EXPECT_EQ(run.output.find("fixture exercising the suppression path"),
            std::string::npos)
      << run.output;
}

// The acceptance gate: the real sources carry zero unsuppressed findings.
TEST(LintTest, SrcTreeIsClean) {
  const LintRun run = RunLint("--json " + std::string(TORNADO_SRC_DIR));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

}  // namespace
}  // namespace tornado
