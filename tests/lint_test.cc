// Exercises the tornado_lint binary against fixture files with known-bad
// snippets: every rule must fire on its fixture, NOLINT/NOLINTNEXTLINE
// with a reason must suppress, and the real src/ tree must scan clean.
//
// The binary path and fixture directory come in through compile
// definitions (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <string>

#include "tests/test_util.h"

namespace tornado {
namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun RunLint(const std::string& args) {
  const std::string cmd =
      std::string(TORNADO_LINT_BIN) + " " + args + " 2>&1";
  LintRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  std::array<char, 4096> buf;
  size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    run.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

std::string Fixtures(const std::string& sub = "") {
  std::string path = TORNADO_LINT_FIXTURES;
  if (!sub.empty()) path += "/" + sub;
  return path;
}

// Count of JSON finding lines naming `rule` with the given suppression
// state (the --json writer emits one finding per line).
int CountFindings(const std::string& json, const std::string& rule,
                  bool suppressed) {
  const std::string rule_key = "\"rule\": \"" + rule + "\"";
  const std::string supp_key =
      std::string("\"suppressed\": ") + (suppressed ? "true" : "false");
  int count = 0;
  size_t pos = 0;
  while ((pos = json.find(rule_key, pos)) != std::string::npos) {
    const size_t eol = json.find('\n', pos);
    const std::string line = json.substr(pos, eol - pos);
    if (line.find(supp_key) != std::string::npos) ++count;
    pos += rule_key.size();
  }
  return count;
}

TEST(LintTest, EveryRuleFiresOnItsFixture) {
  const LintRun run = RunLint("--json " + Fixtures());
  ASSERT_EQ(run.exit_code, 1) << run.output;
  for (const char* rule :
       {"DET-001", "DET-002", "DET-003", "DET-004", "SER-001", "RUN-001"}) {
    EXPECT_GE(CountFindings(run.output, rule, /*suppressed=*/false), 1)
        << rule << " did not fire:\n" << run.output;
  }
}

TEST(LintTest, NolintWithReasonSuppresses) {
  const LintRun run = RunLint("--json " + Fixtures());
  ASSERT_EQ(run.exit_code, 1) << run.output;
  for (const char* rule : {"DET-001", "DET-002", "DET-003", "DET-004", "RUN-001"}) {
    EXPECT_GE(CountFindings(run.output, rule, /*suppressed=*/true), 1)
        << rule << " suppression fixture not honored:\n" << run.output;
  }
  EXPECT_NE(run.output.find("fixture exercising the suppression path"),
            std::string::npos)
      << "suppression reasons must be carried into the report";
}

TEST(LintTest, NolintWithoutReasonDoesNotSuppress) {
  const LintRun run = RunLint("--json " + Fixtures("bad/det001_clock.cc"));
  ASSERT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("carries no reason"), std::string::npos)
      << run.output;
}

TEST(LintTest, SerRuleNamesTheOrphanStruct) {
  const LintRun run = RunLint("--json " + Fixtures("ser"));
  ASSERT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("OrphanMsg"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find("\"rule\": \"SER-001\", \"message\": "
                            "\"wire message `RegisteredMsg`"),
            std::string::npos)
      << "registered struct must not be reported:\n" << run.output;
  EXPECT_EQ(run.output.find("TracedEnvelopeMsg"), std::string::npos)
      << "registered trace-payload struct must not be reported:\n"
      << run.output;
}

TEST(LintTest, CleanFixtureScansClean) {
  const LintRun run = RunLint("--json " + Fixtures("clean"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("\"unsuppressed\": 0"), std::string::npos)
      << run.output;
}

TEST(LintTest, FixHintsNameTheRemedy) {
  const LintRun run = RunLint("--fix-hints " + Fixtures("bad"));
  ASSERT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("hint: "), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("common/ordered.h"), std::string::npos)
      << run.output;
}

// The acceptance gate: the real sources carry zero unsuppressed findings.
TEST(LintTest, SrcTreeIsClean) {
  const LintRun run = RunLint("--json " + std::string(TORNADO_SRC_DIR));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

}  // namespace
}  // namespace tornado
