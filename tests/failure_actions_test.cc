// Unit tests for the FailureInjector's schedule-driven actions beyond
// kill/recover: one-way link drops, bidirectional partitions and per-node
// delay multipliers — each through its apply AND heal transition, since
// the scenario runner (src/scenario/runner.cc) compiles timelines into
// exactly these calls.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/metrics.h"
#include "net/payload.h"
#include "runtime/sim_substrate.h"
#include "sim/failure_injector.h"
#include "tests/test_util.h"

namespace tornado {
namespace {

struct TestPayload : Payload {
  explicit TestPayload(int v) : value(v) {}
  int value;
  const char* name() const override { return "Test"; }
};

/// Records each received value with the virtual time it arrived at.
class StampSink : public Node {
 public:
  explicit StampSink(const Clock* clock) : clock_(clock) {}
  void OnMessage(NodeId src, const Payload& msg) override {
    (void)src;
    values.push_back(static_cast<const TestPayload&>(msg).value);
    times.push_back(clock_->now());
  }
  std::vector<int> values;
  std::vector<double> times;

 private:
  const Clock* clock_;
};

class FailureActionsTest : public ::testing::Test {
 protected:
  /// Nodes i are placed on host i%hosts — cross-host pairs exercise the
  /// wire path where link drops apply.
  void Init(int nodes, int hosts, CostModel cost = CostModel()) {
    substrate = std::make_unique<SimSubstrate>(cost, /*seed=*/5);
    injector = std::make_unique<FailureInjector>(substrate->scheduler(),
                                                 substrate->transport());
    for (int i = 0; i < nodes; ++i) {
      auto node = std::make_unique<StampSink>(substrate->clock());
      substrate->network()->RegisterNode(node.get(), i % hosts);
      sinks.push_back(std::move(node));
    }
  }

  void Send(NodeId from, NodeId to, int value, bool reliable = false) {
    substrate->network()->Send(from, to,
                               std::make_shared<TestPayload>(value), reliable);
  }

  int64_t Dropped() {
    return substrate->network()->metrics().Get(metric::kMessagesDroppedLink);
  }

  std::unique_ptr<SimSubstrate> substrate;
  std::unique_ptr<FailureInjector> injector;
  std::vector<std::unique_ptr<StampSink>> sinks;
};

TEST_F(FailureActionsTest, LinkDropIsOneWayAndHeals) {
  Init(2, 2);
  injector->DropLinkAt(0, 1, /*at=*/1.0);
  injector->RestoreLinkAt(0, 1, /*at=*/2.0);

  Send(0, 1, 10);  // before the drop: delivered
  substrate->RunFor(1.5);
  Send(0, 1, 11);  // during the drop: lost at the sending host
  Send(1, 0, 20);  // reverse direction unaffected (one-way semantics)
  substrate->RunFor(1.0);
  Send(0, 1, 12);  // after the restore: delivered again
  substrate->RunFor(1.0);

  EXPECT_EQ(sinks[1]->values, (std::vector<int>{10, 12}));
  EXPECT_EQ(sinks[0]->values, (std::vector<int>{20}));
  EXPECT_EQ(Dropped(), 1);
}

TEST_F(FailureActionsTest, ReliableSendIsMaskedByRetransmitAfterHeal) {
  Init(2, 2);
  injector->DropLinkAt(0, 1, /*at=*/1.0);
  injector->RestoreLinkAt(0, 1, /*at=*/1.5);

  substrate->RunFor(1.1);
  Send(0, 1, 30, /*reliable=*/true);  // first attempt lost, retry succeeds
  substrate->RunFor(3.0);

  EXPECT_EQ(sinks[1]->values, (std::vector<int>{30}));
  EXPECT_GE(Dropped(), 1);
}

TEST_F(FailureActionsTest, PartitionCutsBothDirectionsAndHeals) {
  Init(4, 4);
  injector->PartitionAt({0, 1}, /*at=*/1.0);
  injector->HealPartitionAt({0, 1}, /*at=*/2.0);

  substrate->RunFor(1.2);
  Send(0, 2, 40);  // island -> rest: cut
  Send(2, 0, 41);  // rest -> island: cut
  Send(0, 1, 42);  // intra-island: flows
  Send(2, 3, 43);  // intra-rest: flows
  substrate->RunFor(0.5);
  EXPECT_TRUE(sinks[2]->values.empty());
  EXPECT_TRUE(sinks[0]->values.empty());
  EXPECT_EQ(sinks[1]->values, (std::vector<int>{42}));
  EXPECT_EQ(sinks[3]->values, (std::vector<int>{43}));
  EXPECT_EQ(Dropped(), 2);

  substrate->RunFor(0.5);  // past the heal
  Send(0, 2, 44);
  Send(2, 0, 45);
  substrate->RunFor(0.5);
  EXPECT_EQ(sinks[2]->values, (std::vector<int>{44}));
  EXPECT_EQ(sinks[0]->values, (std::vector<int>{45}));
  EXPECT_EQ(Dropped(), 2);  // nothing new dropped after the heal
}

TEST_F(FailureActionsTest, SlowNodeStretchesServiceTimeUntilRestored) {
  // Deterministic timing: no jitter, and a service time that dominates
  // the fixed network latency so the multiplier is visible.
  CostModel cost;
  cost.net_jitter = 0.0;
  cost.per_message_cpu = 1e-3;
  Init(2, 2, cost);
  injector->SlowNodeAt(1, /*factor=*/10.0, /*at=*/1.0);
  injector->RestoreSpeedAt(1, /*at=*/2.0);

  // Service time delays the NEXT dequeue, so the multiplier shows up as
  // the spread across a back-to-back burst: the same 3-message pattern in
  // a nominal, a slowed and a restored window.
  auto burst_spread = [&](int first_value) {
    const size_t before = sinks[1]->times.size();
    Send(0, 1, first_value);
    Send(0, 1, first_value + 1);
    Send(0, 1, first_value + 2);
    substrate->RunFor(1.0);
    const auto& times = sinks[1]->times;
    EXPECT_EQ(times.size(), before + 3);
    return times.back() - times[before];
  };

  const double nominal = burst_spread(50);   // window [0, 1)
  const double slowed = burst_spread(60);    // window [1, 2): factor 10
  const double restored = burst_spread(70);  // window [2, 3): factor 1

  EXPECT_GT(slowed, nominal * 5.0);
  // Factor 1.0 makes the service expression an exact identity; the spread
  // subtracts absolute timestamps near t=2, so allow one-ULP noise there.
  EXPECT_NEAR(restored, nominal, 1e-12);
}

}  // namespace
}  // namespace tornado
