// End-to-end tests: SSSP on the full Tornado engine (main loop ingestion,
// branch-loop queries, snapshot consistency) validated against a Dijkstra
// reference on the same evolving graph.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "algos/sssp.h"
#include "core/cluster.h"
#include "graph/dynamic_graph.h"
#include "stream/graph_stream.h"
#include "tests/test_util.h"

namespace tornado {
namespace {

constexpr VertexId kSource = 0;

/// Replays the same generated stream into a DynamicGraph to build the
/// reference answer at a given prefix length.
DynamicGraph GraphAtPrefix(const GraphStreamOptions& options, size_t prefix) {
  GraphStream stream(options);
  DynamicGraph graph;
  for (size_t i = 0; i < prefix; ++i) {
    auto tuple = stream.Next();
    if (!tuple.has_value()) break;
    graph.Apply(std::get<EdgeDelta>(tuple->delta));
  }
  return graph;
}

JobConfig MakeConfig(uint64_t delay_bound, uint32_t processors = 4) {
  JobConfig config;
  config.program = std::make_shared<SsspProgram>(kSource);
  config.delay_bound = delay_bound;
  config.num_processors = processors;
  config.num_hosts = 2;
  config.convergence.quiescence = true;
  config.ingest_rate = 100000.0;
  config.ingest_batch = 10;
  config.seed = 17;
  return config;
}

GraphStreamOptions SmallGraph() {
  GraphStreamOptions options;
  options.num_vertices = 200;
  options.num_tuples = 1500;
  options.deletion_ratio = 0.05;
  options.seed = 7;
  return options;
}

void ExpectMatchesDijkstra(const TornadoCluster& cluster, LoopId branch,
                           const DynamicGraph& reference) {
  const auto expected = reference.ShortestPaths(kSource);
  size_t checked = 0;
  for (VertexId v : reference.Vertices()) {
    auto state_ptr = cluster.ReadVertexState(branch, v);
    const auto it = expected.find(v);
    const double want =
        it == expected.end() ? kSsspInfinity : it->second;
    double got = kSsspInfinity;
    if (state_ptr != nullptr) {
      got = static_cast<const SsspState&>(*state_ptr).length;
    }
    if (want == kSsspInfinity) {
      EXPECT_EQ(got, kSsspInfinity) << "vertex " << v;
    } else {
      ASSERT_NE(state_ptr, nullptr) << "vertex " << v << " missing";
      EXPECT_NEAR(got, want, 1e-9) << "vertex " << v;
    }
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

class SsspEngineTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SsspEngineTest, BranchLoopMatchesDijkstraAfterFullStream) {
  const GraphStreamOptions graph_options = SmallGraph();
  JobConfig config = MakeConfig(/*delay_bound=*/GetParam());
  TornadoCluster cluster(config, std::make_unique<GraphStream>(graph_options));
  CheckObserver checker(CheckObserver::Options{
      /*abort_on_violation=*/true, &cluster.store()});
  AttachChecker(cluster, checker);
  cluster.Start();

  ASSERT_TRUE(cluster.RunUntilEmitted(graph_options.num_tuples, 600.0));
  // Let the main loop's incremental approximation settle, then query.
  cluster.RunFor(2.0);
  cluster.ingester().Pause();
  cluster.RunFor(1.0);

  const uint64_t query = cluster.ingester().SubmitQuery();
  ASSERT_TRUE(cluster.RunUntilQueryDone(query, 600.0))
      << "branch loop did not converge";

  const LoopId branch = cluster.BranchOf(query);
  ASSERT_NE(branch, 0u);
  DeepCheckAll(cluster, checker);
  EXPECT_GT(checker.commits_checked(), 0u);
  ExpectMatchesDijkstra(cluster, branch,
                        GraphAtPrefix(graph_options, graph_options.num_tuples));
}

TEST_P(SsspEngineTest, MidStreamQueryMatchesPrefixSnapshot) {
  const GraphStreamOptions graph_options = SmallGraph();
  JobConfig config = MakeConfig(/*delay_bound=*/GetParam());
  TornadoCluster cluster(config, std::make_unique<GraphStream>(graph_options));
  cluster.Start();

  const size_t prefix = graph_options.num_tuples / 2;
  ASSERT_TRUE(cluster.RunUntilEmitted(prefix, 600.0));
  cluster.ingester().Pause();
  cluster.RunFor(2.0);

  const uint64_t query = cluster.ingester().SubmitQuery();
  ASSERT_TRUE(cluster.RunUntilQueryDone(query, 600.0));
  const LoopId branch = cluster.BranchOf(query);

  // The ingester may have raced a few more tuples out before Pause took
  // effect; the reference uses exactly what was emitted.
  const size_t emitted = cluster.ingester().emitted();
  ExpectMatchesDijkstra(cluster, branch, GraphAtPrefix(graph_options, emitted));

  // Resume and finish the stream; a second query must reflect the suffix.
  cluster.ingester().Resume();
  ASSERT_TRUE(cluster.RunUntilEmitted(graph_options.num_tuples, 600.0));
  cluster.ingester().Pause();
  cluster.RunFor(2.0);
  const uint64_t query2 = cluster.ingester().SubmitQuery();
  ASSERT_TRUE(cluster.RunUntilQueryDone(query2, 600.0));
  ExpectMatchesDijkstra(cluster, cluster.BranchOf(query2),
                        GraphAtPrefix(graph_options, graph_options.num_tuples));
}

INSTANTIATE_TEST_SUITE_P(DelayBounds, SsspEngineTest,
                         ::testing::Values(1, 4, 256, 65536),
                         [](const auto& info) {
                           return "B" + std::to_string(info.param);
                         });

TEST(SsspEngineDetailTest, QueryLatencyIsRecorded) {
  const GraphStreamOptions graph_options = SmallGraph();
  JobConfig config = MakeConfig(64);
  TornadoCluster cluster(config, std::make_unique<GraphStream>(graph_options));
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilEmitted(graph_options.num_tuples, 600.0));
  cluster.RunFor(1.0);
  const uint64_t query = cluster.ingester().SubmitQuery();
  ASSERT_TRUE(cluster.RunUntilQueryDone(query, 600.0));
  EXPECT_GT(cluster.QueryLatency(query), 0.0);
  EXPECT_EQ(cluster.ingester().completed_queries().size(), 1u);
}

TEST(SsspEngineDetailTest, SynchronousBoundUsesNoPrepares) {
  const GraphStreamOptions graph_options = SmallGraph();
  JobConfig config = MakeConfig(/*delay_bound=*/1);
  TornadoCluster cluster(config, std::make_unique<GraphStream>(graph_options));
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilEmitted(graph_options.num_tuples, 600.0));
  cluster.RunFor(2.0);
  const uint64_t query = cluster.ingester().SubmitQuery();
  ASSERT_TRUE(cluster.RunUntilQueryDone(query, 600.0));
  // Section 4.4 / Table 2: with B = 1 the execution is synchronous and no
  // PREPARE messages are needed.
  EXPECT_EQ(cluster.metrics().Get(metric::kPreparesSent), 0);
}

TEST(SsspEngineDetailTest, AsyncLoopUsesPrepares) {
  const GraphStreamOptions graph_options = SmallGraph();
  JobConfig config = MakeConfig(/*delay_bound=*/65536);
  TornadoCluster cluster(config, std::make_unique<GraphStream>(graph_options));
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilEmitted(graph_options.num_tuples, 600.0));
  cluster.RunFor(2.0);
  EXPECT_GT(cluster.metrics().Get(metric::kPreparesSent), 0);
}

}  // namespace
}  // namespace tornado
