// Unit tests for the dynamic graph substrate and the partitioner,
// including property-style sweeps comparing Dijkstra against brute-force
// Bellman-Ford on random graphs.

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "common/rng.h"
#include "graph/dynamic_graph.h"
#include "tests/test_util.h"

namespace tornado {
namespace {

TEST(DynamicGraphTest, InsertAndRemove) {
  DynamicGraph graph;
  EXPECT_TRUE(graph.Apply(EdgeDelta{1, 2, 5.0, true}));
  EXPECT_TRUE(graph.Apply(EdgeDelta{1, 2, 7.0, true}));  // parallel edge
  EXPECT_EQ(graph.NumEdges(), 2u);
  EXPECT_EQ(graph.OutEdges(1).size(), 2u);
  EXPECT_TRUE(graph.HasVertex(2));  // endpoint materialized

  EXPECT_TRUE(graph.Apply(EdgeDelta{1, 2, 5.0, false}));
  EXPECT_EQ(graph.NumEdges(), 1u);
  EXPECT_FALSE(graph.Apply(EdgeDelta{1, 9, 1.0, false}));  // unknown edge
}

TEST(DynamicGraphTest, ShortestPathsTinyGraph) {
  DynamicGraph graph;
  graph.Apply(EdgeDelta{0, 1, 1.0, true});
  graph.Apply(EdgeDelta{1, 2, 1.0, true});
  graph.Apply(EdgeDelta{0, 2, 5.0, true});
  auto dist = graph.ShortestPaths(0);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
  EXPECT_DOUBLE_EQ(dist[2], 2.0);
  EXPECT_EQ(dist.count(99), 0u);
}

/// Brute-force Bellman-Ford used as the oracle.
std::unordered_map<VertexId, double> BellmanFord(const DynamicGraph& graph,
                                                 VertexId source) {
  std::unordered_map<VertexId, double> dist;
  dist[source] = 0.0;
  const auto vertices = graph.Vertices();
  for (size_t round = 0; round <= vertices.size(); ++round) {
    bool changed = false;
    for (VertexId u : vertices) {
      auto du = dist.find(u);
      if (du == dist.end()) continue;
      for (const auto& e : graph.OutEdges(u)) {
        const double nd = du->second + e.weight;
        auto [it, inserted] = dist.emplace(e.dst, nd);
        if (!inserted && nd < it->second) {
          it->second = nd;
          changed = true;
        } else if (inserted) {
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return dist;
}

class DijkstraPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DijkstraPropertyTest, MatchesBellmanFordOnRandomGraph) {
  Rng rng(GetParam());
  DynamicGraph graph;
  const int vertices = 30 + static_cast<int>(rng.NextUint64(40));
  const int edges = 50 + static_cast<int>(rng.NextUint64(200));
  for (int i = 0; i < edges; ++i) {
    graph.Apply(EdgeDelta{rng.NextUint64(vertices), rng.NextUint64(vertices),
                          rng.NextDouble(0.5, 10.0), true});
  }
  // Random deletions.
  for (int i = 0; i < edges / 4; ++i) {
    const VertexId u = rng.NextUint64(vertices);
    const auto& out = graph.OutEdges(u);
    if (out.empty()) continue;
    const auto& e = out[rng.NextUint64(out.size())];
    graph.Apply(EdgeDelta{u, e.dst, e.weight, false});
  }

  const auto expected = BellmanFord(graph, 0);
  const auto got = graph.ShortestPaths(0);
  EXPECT_EQ(got.size(), expected.size());
  for (const auto& [v, d] : expected) {
    ASSERT_TRUE(got.count(v) > 0) << "vertex " << v;
    EXPECT_NEAR(got.at(v), d, 1e-9) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraPropertyTest,
                         ::testing::Range<uint64_t>(1, 11));

TEST(DynamicGraphTest, PageRankSumsToVertexCount) {
  // With dangling redistribution the normalized ranks sum to ~1.
  Rng rng(3);
  DynamicGraph graph;
  for (int i = 0; i < 300; ++i) {
    graph.Apply(
        EdgeDelta{rng.NextUint64(50), rng.NextUint64(50), 1.0, true});
  }
  auto ranks = graph.PageRank(0.85, 1e-10, 500);
  double sum = 0.0;
  for (const auto& [v, r] : ranks) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(HashPartitionerTest, CoversAllPartitionsRoughlyEvenly) {
  HashPartitioner partitioner(8);
  std::vector<int> counts(8, 0);
  for (VertexId v = 0; v < 8000; ++v) {
    const uint32_t p = partitioner.PartitionOf(v);
    ASSERT_LT(p, 8u);
    counts[p]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(HashPartitionerTest, Deterministic) {
  HashPartitioner a(16), b(16);
  for (VertexId v = 0; v < 100; ++v) {
    EXPECT_EQ(a.PartitionOf(v), b.PartitionOf(v));
  }
}

}  // namespace
}  // namespace tornado
