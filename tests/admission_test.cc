// Tests for branch-loop admission control (Section 5.2: queries fork "if
// there are sufficient idle processors"; queued queries fork later against
// a fresher snapshot) and for the DurableStore file-backed backend.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "algos/sssp.h"
#include "core/cluster.h"
#include "runtime/sim_substrate.h"
#include "storage/durable_store.h"
#include "stream/graph_stream.h"
#include "tests/test_util.h"

namespace tornado {
namespace {

TEST(AdmissionControlTest, ConcurrentBranchesAreCappedButAllComplete) {
  GraphStreamOptions options;
  options.num_vertices = 250;
  options.num_tuples = 2500;
  options.source_hub_weight = 10;
  options.seed = 33;

  JobConfig config;
  config.program = std::make_shared<SsspProgram>(0);
  config.delay_bound = 32;
  config.num_processors = 4;
  config.num_hosts = 2;
  config.ingest_rate = 50000.0;
  config.max_concurrent_branches = 1;

  TornadoCluster cluster(config, std::make_unique<GraphStream>(options));
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilEmitted(options.num_tuples, 600.0));
  cluster.RunFor(1.0);

  // Burst of queries: only one branch may run at a time, but every query
  // must eventually complete.
  std::vector<uint64_t> queries;
  for (int i = 0; i < 4; ++i) {
    queries.push_back(cluster.ingester().SubmitQuery());
  }
  for (uint64_t q : queries) {
    ASSERT_TRUE(cluster.RunUntilQueryDone(q, 600.0)) << "query " << q;
    EXPECT_GT(cluster.QueryLatency(q), 0.0);
  }

  // Queued queries fork strictly after their predecessors converge.
  const auto& records = cluster.master().queries();
  ASSERT_EQ(records.size(), 4u);
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_GE(records[i].fork_time, records[i - 1].converge_time - 1e-9)
        << "branches " << i - 1 << " and " << i << " overlapped";
  }
}

TEST(AdmissionControlTest, UnlimitedByDefault) {
  GraphStreamOptions options;
  options.num_vertices = 150;
  options.num_tuples = 1200;
  options.source_hub_weight = 10;
  options.seed = 35;

  JobConfig config;
  config.program = std::make_shared<SsspProgram>(0);
  config.delay_bound = 32;
  config.num_processors = 2;
  config.num_hosts = 1;
  config.ingest_rate = 50000.0;

  TornadoCluster cluster(config, std::make_unique<GraphStream>(options));
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilEmitted(options.num_tuples, 600.0));
  cluster.RunFor(1.0);

  const uint64_t q1 = cluster.ingester().SubmitQuery();
  const uint64_t q2 = cluster.ingester().SubmitQuery();
  ASSERT_TRUE(cluster.RunUntilQueryDone(q1, 600.0));
  ASSERT_TRUE(cluster.RunUntilQueryDone(q2, 600.0));
  const auto& records = cluster.master().queries();
  ASSERT_EQ(records.size(), 2u);
  // Both forked immediately (no queueing).
  EXPECT_LT(records[1].fork_time - records[1].submit_time, 0.1);
}

// ---------------------------------------------------------------------------
// DurableStore
// ---------------------------------------------------------------------------

class DurableStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/tornado_durable_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(DurableStoreTest, FlushPersistsAcrossReopen) {
  {
    DurableStore durable;
    auto opened = durable.Open(path_);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(*opened, 0u);
    durable.Put(0, 1, 1, {10});
    durable.Put(0, 1, 2, {20});
    durable.Put(0, 2, 2, {22});
    durable.Put(0, 1, 5, {50});  // beyond the flush watermark
    auto flushed = durable.Flush(0, 3);
    ASSERT_TRUE(flushed.ok());
    EXPECT_EQ(*flushed, 3u);
    ASSERT_TRUE(durable.Close().ok());
  }
  {
    DurableStore durable;
    auto opened = durable.Open(path_);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(*opened, 3u);
    EXPECT_EQ(durable.store().Get(0, 1, 3)[0], 20);
    EXPECT_EQ(durable.store().Get(0, 2, 3)[0], 22);
    const VersionView at10 = durable.store().Get(0, 1, 10);
    EXPECT_EQ(!at10 ? 0 : at10[0], 20)
        << "unflushed version must not survive the restart";
  }
}

TEST_F(DurableStoreTest, SecondFlushOnlyAppendsNewVersions) {
  DurableStore durable;
  ASSERT_TRUE(durable.Open(path_).ok());
  durable.Put(0, 1, 1, {1});
  ASSERT_EQ(*durable.Flush(0, 1), 1u);
  durable.Put(0, 1, 2, {2});
  durable.Put(0, 3, 2, {3});
  auto flushed = durable.Flush(0, 2);
  ASSERT_TRUE(flushed.ok());
  EXPECT_EQ(*flushed, 2u) << "already-durable versions re-appended";
  EXPECT_TRUE(durable.Close().ok());
}

TEST_F(DurableStoreTest, FlushWithoutOpenFails) {
  DurableStore durable;
  durable.Put(0, 1, 1, {1});
  EXPECT_FALSE(durable.Flush(0, 1).ok());
}

TEST_F(DurableStoreTest, AutoFlushMakesWritesDurableOnThePeriod) {
  EventLoop loop;
  SimScheduler scheduler(&loop);
  DurableStore durable;
  ASSERT_TRUE(durable.Open(path_).ok());
  durable.ScheduleAutoFlush(&scheduler, /*period=*/0.5);

  durable.Put(0, 1, 1, {1});
  loop.RunUntil(0.4);
  EXPECT_EQ(durable.store().DirtyVersions(0), 1u) << "flushed too early";
  loop.RunUntil(0.6);
  EXPECT_EQ(durable.store().DirtyVersions(0), 0u);
  EXPECT_EQ(durable.auto_flushes(), 1u);

  // The timer re-arms: a later write goes durable on the next tick.
  durable.Put(0, 2, 3, {3});
  loop.RunUntil(1.1);
  EXPECT_EQ(durable.store().DirtyVersions(0), 0u);

  // Close cancels the schedule; no further ticks fire.
  ASSERT_TRUE(durable.Close().ok());
  const uint64_t ticks = durable.auto_flushes();
  loop.RunUntil(5.0);
  EXPECT_EQ(durable.auto_flushes(), ticks);
}

}  // namespace
}  // namespace tornado
