// Unit tests for the stream generators (the dataset substitutes) and
// reservoir sampling.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <unordered_map>

#include "common/rng.h"
#include "stream/graph_stream.h"
#include "stream/instance_stream.h"
#include "stream/point_stream.h"
#include "stream/reservoir.h"
#include "stream/vector_stream.h"
#include "tests/test_util.h"

namespace tornado {
namespace {

TEST(GraphStreamTest, DeterministicReplay) {
  GraphStreamOptions options;
  options.num_tuples = 500;
  options.deletion_ratio = 0.1;
  GraphStream a(options), b(options);
  for (int i = 0; i < 500; ++i) {
    auto ta = a.Next();
    auto tb = b.Next();
    ASSERT_TRUE(ta.has_value());
    const auto& ea = std::get<EdgeDelta>(ta->delta);
    const auto& eb = std::get<EdgeDelta>(tb->delta);
    EXPECT_EQ(ea.src, eb.src);
    EXPECT_EQ(ea.dst, eb.dst);
    EXPECT_EQ(ea.weight, eb.weight);
    EXPECT_EQ(ea.insert, eb.insert);
  }
  EXPECT_FALSE(a.Next().has_value());
  EXPECT_EQ(a.Emitted(), 500u);
}

TEST(GraphStreamTest, DeletionsOnlyRetractLiveEdges) {
  GraphStreamOptions options;
  options.num_tuples = 5000;
  options.deletion_ratio = 0.3;
  options.num_vertices = 100;
  GraphStream stream(options);
  std::map<std::pair<VertexId, VertexId>, int> live;
  size_t deletions = 0;
  while (auto tuple = stream.Next()) {
    const auto& e = std::get<EdgeDelta>(tuple->delta);
    if (e.insert) {
      ++(live[{e.src, e.dst}]);
    } else {
      ++deletions;
      ASSERT_GT((live[{e.src, e.dst}]), 0)
          << "retracted an edge that was never inserted";
      --(live[{e.src, e.dst}]);
    }
  }
  EXPECT_GT(deletions, 1000u);
  EXPECT_LT(deletions, 2000u);
}

TEST(GraphStreamTest, PreferentialAttachmentIsSkewed) {
  GraphStreamOptions options;
  options.num_tuples = 20000;
  options.num_vertices = 5000;
  options.preferential = 0.7;
  options.deletion_ratio = 0.0;
  GraphStream stream(options);
  std::unordered_map<VertexId, int> degree;
  while (auto tuple = stream.Next()) {
    const auto& e = std::get<EdgeDelta>(tuple->delta);
    degree[e.src]++;
    degree[e.dst]++;
  }
  int max_degree = 0;
  for (const auto& [v, d] : degree) max_degree = std::max(max_degree, d);
  const double avg =
      2.0 * options.num_tuples / static_cast<double>(degree.size());
  EXPECT_GT(max_degree, 10 * avg) << "degree distribution is not heavy-tailed";
}

TEST(GraphStreamTest, WeightsWithinRange) {
  GraphStreamOptions options;
  options.num_tuples = 1000;
  options.min_weight = 2.0;
  options.max_weight = 3.0;
  GraphStream stream(options);
  while (auto tuple = stream.Next()) {
    const auto& e = std::get<EdgeDelta>(tuple->delta);
    EXPECT_GE(e.weight, 2.0);
    EXPECT_LT(e.weight, 3.0);
  }
}

TEST(PointStreamTest, PointsClusterAroundCentroids) {
  PointStreamOptions options;
  options.num_tuples = 5000;
  options.num_clusters = 3;
  options.dimensions = 4;
  options.cluster_spread = 1.0;
  options.space_extent = 200.0;
  PointStream stream(options);
  const auto centroids = stream.true_centroids();
  size_t near = 0, total = 0;
  while (auto tuple = stream.Next()) {
    const auto& p = std::get<PointDelta>(tuple->delta);
    if (!p.insert) continue;
    ++total;
    for (const auto& c : centroids) {
      double d2 = 0.0;
      for (size_t i = 0; i < c.size(); ++i) {
        d2 += (p.coords[i] - c[i]) * (p.coords[i] - c[i]);
      }
      // Within 5 sigma of some generating centroid.
      if (d2 < 25.0 * options.dimensions) {
        ++near;
        break;
      }
    }
  }
  EXPECT_GT(near, total * 95 / 100);
}

TEST(PointStreamTest, DriftMovesCentroids) {
  PointStreamOptions options;
  options.num_tuples = 2000;
  options.drift = 0.05;
  PointStream stream(options);
  const auto before = stream.true_centroids();
  while (stream.Next()) {
  }
  const auto after = stream.true_centroids();
  double moved = 0.0;
  for (size_t k = 0; k < before.size(); ++k) {
    for (size_t d = 0; d < before[k].size(); ++d) {
      moved += std::fabs(after[k][d] - before[k][d]);
    }
  }
  EXPECT_GT(moved, 1.0);
}

TEST(InstanceStreamTest, LabelsMatchTrueHyperplaneMostly) {
  InstanceStreamOptions options;
  options.num_tuples = 5000;
  options.dimensions = 10;
  options.label_noise = 0.0;
  InstanceStream stream(options);
  const auto& w = stream.true_weights();
  size_t consistent = 0;
  while (auto tuple = stream.Next()) {
    const auto& inst = std::get<InstanceDelta>(tuple->delta);
    double dot = 0.0;
    for (const auto& [idx, value] : inst.features) dot += w[idx] * value;
    if ((dot >= 0.0 ? 1.0 : -1.0) == inst.label) ++consistent;
  }
  EXPECT_EQ(consistent, 5000u);
}

TEST(InstanceStreamTest, SparseModeRespectsNnzAndSortsIndices) {
  InstanceStreamOptions options;
  options.num_tuples = 200;
  options.sparse = true;
  options.dimensions = 500;
  options.sparsity_nnz = 25;
  InstanceStream stream(options);
  while (auto tuple = stream.Next()) {
    const auto& inst = std::get<InstanceDelta>(tuple->delta);
    EXPECT_LE(inst.features.size(), 25u);
    for (size_t i = 1; i < inst.features.size(); ++i) {
      EXPECT_LE(inst.features[i - 1].first, inst.features[i].first);
    }
  }
}

TEST(InstanceStreamTest, LabelNoiseFlipsRoughlyTheConfiguredFraction) {
  InstanceStreamOptions options;
  options.num_tuples = 20000;
  options.dimensions = 8;
  options.label_noise = 0.25;
  InstanceStream stream(options);
  const auto w = stream.true_weights();  // copy: no drift configured
  size_t flipped = 0;
  while (auto tuple = stream.Next()) {
    const auto& inst = std::get<InstanceDelta>(tuple->delta);
    double dot = 0.0;
    for (const auto& [idx, value] : inst.features) dot += w[idx] * value;
    if ((dot >= 0.0 ? 1.0 : -1.0) != inst.label) ++flipped;
  }
  EXPECT_NEAR(static_cast<double>(flipped) / 20000.0, 0.25, 0.02);
}

// ---------------------------------------------------------------------------
// Reservoir sampling: Section 3.2's correctness condition.
// ---------------------------------------------------------------------------

TEST(ReservoirTest, KeepsEverythingBelowCapacity) {
  ReservoirSampler<int> sampler(10, 1);
  for (int i = 0; i < 10; ++i) sampler.Offer(i);
  EXPECT_EQ(sampler.size(), 10u);
  EXPECT_EQ(sampler.seen(), 10u);
}

TEST(ReservoirTest, UniformInclusionProbability) {
  // Property (Vitter): after N offers with capacity C, every element is
  // retained with probability C/N — including the earliest ones. This is
  // exactly why the paper mandates reservoir (not plain random) sampling
  // for SGD over evolving data.
  constexpr int kCapacity = 50;
  constexpr int kN = 1000;
  constexpr int kRounds = 400;
  std::vector<int> retained(kN, 0);
  for (int round = 0; round < kRounds; ++round) {
    ReservoirSampler<int> sampler(kCapacity, 1000 + round);
    for (int i = 0; i < kN; ++i) sampler.Offer(i);
    for (int v : sampler.items()) retained[v]++;
  }
  // Expected retention count per element: kRounds * C / N = 20.
  const double expected = static_cast<double>(kRounds) * kCapacity / kN;
  double early = 0.0, late = 0.0;
  for (int i = 0; i < kN / 4; ++i) early += retained[i];
  for (int i = 3 * kN / 4; i < kN; ++i) late += retained[i];
  early /= kN / 4.0;
  late /= kN / 4.0;
  EXPECT_NEAR(early, expected, expected * 0.15)
      << "old elements are under-sampled";
  EXPECT_NEAR(late, expected, expected * 0.15)
      << "new elements are under-sampled";
}

TEST(ReservoirTest, RestoreRoundTrip) {
  ReservoirSampler<int> sampler(4, 9);
  for (int i = 0; i < 100; ++i) sampler.Offer(i);
  auto items = sampler.items();
  ReservoirSampler<int> restored(4, 9);
  restored.Restore(items, sampler.seen());
  EXPECT_EQ(restored.seen(), 100u);
  EXPECT_EQ(restored.items(), items);
}

TEST(VectorStreamTest, ReplaysInOrder) {
  std::vector<Delta> deltas = {EdgeDelta{1, 2, 1.0, true},
                               EdgeDelta{2, 3, 2.0, true}};
  VectorStream stream(deltas);
  EXPECT_EQ(stream.TotalTuples(), 2u);
  auto first = stream.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(std::get<EdgeDelta>(first->delta).src, 1u);
  auto second = stream.Next();
  EXPECT_EQ(std::get<EdgeDelta>(second->delta).src, 2u);
  EXPECT_FALSE(stream.Next().has_value());
}

}  // namespace
}  // namespace tornado
