// Unit tests for the foundation layer: Status/Result, Rng, Histogram,
// LamportClock, serialization, metrics.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "common/histogram.h"
#include "common/lamport_clock.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/status.h"
#include "tests/test_util.h"

namespace tornado {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::NotFound("no such vertex");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such vertex");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Aborted("x"), Status::Aborted("x"));
  EXPECT_FALSE(Status::Aborted("x") == Status::Aborted("y"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedValuesStayInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
    const int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.03);
}

TEST(RngTest, ZipfIsSkewedAndBounded) {
  Rng rng(17);
  std::map<uint64_t, int> counts;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const uint64_t z = rng.NextZipf(1000, 1.2);
    ASSERT_LT(z, 1000u);
    counts[z]++;
  }
  // Rank 0 must dominate rank 99 heavily.
  EXPECT_GT(counts[0], 20 * std::max(1, counts[99]));
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(19);
  int heads = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) heads += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / kN, 0.3, 0.01);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic) {
  Rng a(31);
  Rng b(31);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(fa.NextUint64(), fb.NextUint64());
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0.0);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.Percentile(50), 50.5, 0.5);
  EXPECT_NEAR(h.Percentile(99), 99.0, 1.1);
}

TEST(HistogramTest, MergeCombinesSamples) {
  Histogram a, b;
  a.Add(1.0);
  b.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
}

TEST(HistogramTest, StddevOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Add(4.0);
  EXPECT_DOUBLE_EQ(h.Stddev(), 0.0);
}

// ---------------------------------------------------------------------------
// MetricRegistry distributions
// ---------------------------------------------------------------------------

TEST(MetricRegistryTest, ObserveFeedsNamedDistribution) {
  MetricRegistry metrics;
  EXPECT_EQ(metrics.GetHistogram("latency"), nullptr);
  metrics.Observe("latency", 0.5);
  metrics.Observe("latency", 1.5);
  const Histogram* h = metrics.GetHistogram("latency");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_DOUBLE_EQ(h->Mean(), 1.0);
  EXPECT_NE(metrics.ToString().find("latency"), std::string::npos);
}

TEST(MetricRegistryTest, HandlesSurviveReset) {
  MetricRegistry metrics;
  Histogram& handle = metrics.HistogramHandle("staleness");
  handle.Add(2.0);
  std::atomic<int64_t>& counter = metrics.CounterHandle("commits");
  counter = 7;
  metrics.Reset();
  // Reset clears in place: both handles stay valid and read as empty.
  EXPECT_EQ(handle.count(), 0u);
  EXPECT_EQ(counter, 0);
  handle.Add(9.0);
  EXPECT_EQ(metrics.GetHistogram("staleness")->count(), 1u);
}

// ---------------------------------------------------------------------------
// LamportClock
// ---------------------------------------------------------------------------

TEST(LamportClockTest, TicksAreStrictlyIncreasing) {
  LamportClock clock(1);
  LamportTime prev = clock.Tick();
  for (int i = 0; i < 100; ++i) {
    const LamportTime next = clock.Tick();
    EXPECT_LT(prev, next);
    prev = next;
  }
}

TEST(LamportClockTest, WitnessAdvancesBeyondRemote) {
  LamportClock a(1), b(2);
  LamportTime ta;
  for (int i = 0; i < 10; ++i) ta = a.Tick();
  b.Witness(ta);
  EXPECT_GT(b.Tick(), ta);
}

TEST(LamportClockTest, NodeIdBreaksTies) {
  const LamportTime x{5, 1};
  const LamportTime y{5, 2};
  EXPECT_LT(x, y);
  EXPECT_NE(x, y);
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(SerdeTest, PrimitivesRoundTrip) {
  BufferWriter w;
  w.PutU8(7);
  w.PutU32(0xDEADBEEF);
  w.PutU64(~0ULL);
  w.PutI64(-42);
  w.PutDouble(3.14159);
  w.PutString("tornado");

  BufferReader r(w.data());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double d;
  std::string s;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetI64(&i64).ok());
  ASSERT_TRUE(r.GetDouble(&d).ok());
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xDEADBEEF);
  EXPECT_EQ(u64, ~0ULL);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_EQ(s, "tornado");
  EXPECT_TRUE(r.AtEnd());
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, RoundTrips) {
  BufferWriter w;
  w.PutVarint(GetParam());
  BufferReader r(w.data());
  uint64_t v = 0;
  ASSERT_TRUE(r.GetVarint(&v).ok());
  EXPECT_EQ(v, GetParam());
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, VarintRoundTrip,
                         ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL,
                                           16383ULL, 16384ULL, (1ULL << 32),
                                           ~0ULL));

TEST(SerdeTest, VectorsRoundTrip) {
  BufferWriter w;
  w.PutDoubleVec({1.5, -2.5, std::numeric_limits<double>::infinity()});
  w.PutU64Vec({0, 42, ~0ULL});
  BufferReader r(w.data());
  std::vector<double> dv;
  std::vector<uint64_t> uv;
  ASSERT_TRUE(r.GetDoubleVec(&dv).ok());
  ASSERT_TRUE(r.GetU64Vec(&uv).ok());
  EXPECT_EQ(dv.size(), 3u);
  EXPECT_TRUE(std::isinf(dv[2]));
  EXPECT_EQ(uv, (std::vector<uint64_t>{0, 42, ~0ULL}));
}

TEST(SerdeTest, TruncationIsReported) {
  BufferWriter w;
  w.PutU64(5);
  BufferReader r(w.data().data(), 3);  // cut mid-field
  uint64_t v;
  EXPECT_FALSE(r.GetU64(&v).ok());
}

TEST(SerdeTest, RandomRoundTripProperty) {
  Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    BufferWriter w;
    std::vector<uint64_t> varints;
    std::vector<double> doubles;
    const int n = 1 + static_cast<int>(rng.NextUint64(20));
    for (int i = 0; i < n; ++i) {
      varints.push_back(rng.NextUint64() >> rng.NextUint64(64));
      doubles.push_back(rng.NextGaussian(0, 1e6));
    }
    for (int i = 0; i < n; ++i) {
      w.PutVarint(varints[i]);
      w.PutDouble(doubles[i]);
    }
    BufferReader r(w.data());
    for (int i = 0; i < n; ++i) {
      uint64_t v;
      double d;
      ASSERT_TRUE(r.GetVarint(&v).ok());
      ASSERT_TRUE(r.GetDouble(&d).ok());
      EXPECT_EQ(v, varints[i]);
      EXPECT_DOUBLE_EQ(d, doubles[i]);
    }
  }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, IncrementAndRead) {
  MetricRegistry m;
  EXPECT_EQ(m.Get("x"), 0);
  m.Inc("x");
  m.Inc("x", 4);
  EXPECT_EQ(m.Get("x"), 5);
  m.Reset();
  EXPECT_EQ(m.Get("x"), 0);
}

}  // namespace
}  // namespace tornado
