// Model-based property test of the versioned store: a long random
// operation sequence is mirrored into a trivially-correct reference model
// (map of maps) and both must agree on every read, including after flush,
// truncate, prune, fork and merge.

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "common/rng.h"
#include "storage/versioned_store.h"
#include "tests/test_util.h"

namespace tornado {
namespace {

class StoreModel {
 public:
  void Put(LoopId loop, VertexId vertex, Iteration iter,
           std::vector<uint8_t> value) {
    data_[loop][vertex][iter] = std::move(value);
  }

  const std::vector<uint8_t>* Get(LoopId loop, VertexId vertex,
                                  Iteration at) const {
    auto l = data_.find(loop);
    if (l == data_.end()) return nullptr;
    auto v = l->second.find(vertex);
    if (v == l->second.end() || v->second.empty()) return nullptr;
    auto it = v->second.upper_bound(at);
    if (it == v->second.begin()) return nullptr;
    return &std::prev(it)->second;
  }

  void TruncateAfter(LoopId loop, Iteration iter) {
    auto l = data_.find(loop);
    if (l == data_.end()) return;
    for (auto& [vertex, chain] : l->second) {
      chain.erase(chain.upper_bound(iter), chain.end());
    }
  }

  void PruneBelow(LoopId loop, Iteration iter) {
    auto l = data_.find(loop);
    if (l == data_.end()) return;
    for (auto& [vertex, chain] : l->second) {
      auto keep = chain.upper_bound(iter);
      if (keep == chain.begin()) continue;
      --keep;
      chain.erase(chain.begin(), keep);
    }
  }

  void Fork(LoopId src, Iteration iter, LoopId dst) {
    auto l = data_.find(src);
    if (l == data_.end()) return;
    for (const auto& [vertex, chain] : l->second) {
      auto it = chain.upper_bound(iter);
      if (it == chain.begin()) continue;
      data_[dst][vertex][0] = std::prev(it)->second;
    }
  }

  void Merge(LoopId src, LoopId dst, Iteration at) {
    auto l = data_.find(src);
    if (l == data_.end()) return;
    for (const auto& [vertex, chain] : l->second) {
      if (chain.empty()) continue;
      data_[dst][vertex][at] = chain.rbegin()->second;
    }
  }

  std::unordered_map<LoopId,
                     std::unordered_map<VertexId,
                                        std::map<Iteration,
                                                 std::vector<uint8_t>>>>
      data_;
};

class StoreModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StoreModelTest, RandomOpsAgreeWithModel) {
  Rng rng(GetParam() * 2654435761ULL);
  VersionedStore store;
  StoreModel model;

  constexpr int kOps = 4000;
  constexpr int kLoops = 3;
  constexpr int kVertices = 24;
  Iteration max_iter[kLoops] = {0, 0, 0};

  for (int op = 0; op < kOps; ++op) {
    const auto loop = static_cast<LoopId>(rng.NextUint64(kLoops));
    const auto vertex = static_cast<VertexId>(rng.NextUint64(kVertices));
    switch (rng.NextUint64(100)) {
      default: {  // mostly puts with non-decreasing iterations per loop
        const Iteration iter =
            max_iter[loop] + rng.NextUint64(3);
        max_iter[loop] = std::max(max_iter[loop], iter);
        std::vector<uint8_t> value = {
            static_cast<uint8_t>(rng.NextUint64(256)),
            static_cast<uint8_t>(op & 0xFF)};
        store.Put(loop, vertex, iter, value);
        model.Put(loop, vertex, iter, value);
        break;
      }
      case 90:
      case 91: {
        const Iteration at = rng.NextUint64(max_iter[loop] + 2);
        store.TruncateAfter(loop, at);
        model.TruncateAfter(loop, at);
        break;
      }
      case 92:
      case 93: {
        const Iteration at = rng.NextUint64(max_iter[loop] + 2);
        store.PruneBelow(loop, at);
        model.PruneBelow(loop, at);
        break;
      }
      case 94: {
        const auto dst = static_cast<LoopId>((loop + 1) % kLoops);
        const Iteration at = rng.NextUint64(max_iter[loop] + 2);
        store.DropLoop(dst);
        model.data_.erase(dst);
        store.ForkLoop(loop, at, dst);
        model.Fork(loop, at, dst);
        max_iter[dst] = 0;
        break;
      }
      case 95: {
        const auto dst = static_cast<LoopId>((loop + 1) % kLoops);
        const Iteration at = max_iter[dst] + 1 + rng.NextUint64(4);
        max_iter[dst] = at;
        store.MergeLoop(loop, dst, at);
        model.Merge(loop, dst, at);
        break;
      }
      case 96: {
        store.Flush(loop, rng.NextUint64(max_iter[loop] + 2));
        break;  // durability watermark must not affect reads
      }
    }

    // Spot-check reads after every mutation.
    for (int check = 0; check < 4; ++check) {
      const auto l = static_cast<LoopId>(rng.NextUint64(kLoops));
      const auto v = static_cast<VertexId>(rng.NextUint64(kVertices));
      const Iteration at = rng.NextUint64(max_iter[l] + 3);
      const VersionView got = store.Get(l, v, at);
      const auto* want = model.Get(l, v, at);
      ASSERT_EQ(!got, want == nullptr)
          << "op " << op << " loop " << l << " vertex " << v << " at " << at;
      if (want != nullptr) {
        ASSERT_EQ(got.ToVector(), *want)
            << "op " << op << " loop " << l << " vertex " << v << " at "
            << at;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreModelTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace tornado
