// Tracing must not perturb determinism: two identically-seeded traced
// runs produce byte-identical Chrome trace JSON and sampler CSV. (A
// traced run legitimately interleaves differently from an untraced one —
// the sampler schedules loop events — so the contract is traced-vs-traced,
// not traced-vs-untraced; see trace/time_series.h.)

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "algos/sssp.h"
#include "core/cluster.h"
#include "stream/graph_stream.h"
#include "trace/time_series.h"
#include "trace/trace_recorder.h"

namespace tornado {
namespace {

JobConfig MakeConfig() {
  JobConfig config;
  config.program = std::make_shared<SsspProgram>(0);
  config.delay_bound = 4;
  config.num_processors = 4;
  config.num_hosts = 2;
  config.ingest_rate = 100000.0;
  config.ingest_batch = 10;
  config.seed = 23;
  return config;
}

GraphStreamOptions MakeStream() {
  GraphStreamOptions options;
  options.num_vertices = 120;
  options.num_tuples = 800;
  options.deletion_ratio = 0.05;
  options.seed = 11;
  return options;
}

struct TracedRun {
  std::string trace_json;
  std::string series_csv;
  size_t events = 0;
};

TracedRun RunOnce(bool with_failure) {
  TornadoCluster cluster(MakeConfig(),
                         std::make_unique<GraphStream>(MakeStream()));
  cluster.EnableTracing();
  cluster.Start();
  EXPECT_TRUE(cluster.RunUntilEmitted(400, 600.0));
  if (with_failure) {
    cluster.failures().CrashFor(cluster.processor_node(1),
                                cluster.now() + 0.02, 0.3);
  }
  cluster.RunFor(0.6);

  TracedRun run;
  run.events = cluster.trace()->size();
  std::ostringstream trace_os;
  cluster.trace()->WriteChromeTrace(trace_os);
  run.trace_json = trace_os.str();
  std::ostringstream series_os;
  cluster.sampler()->WriteCsv(series_os);
  run.series_csv = series_os.str();
  return run;
}

TEST(TraceDeterminismTest, SameSeedYieldsByteIdenticalArtifacts) {
  const TracedRun a = RunOnce(/*with_failure=*/false);
  const TracedRun b = RunOnce(/*with_failure=*/false);
  EXPECT_GT(a.events, 0u);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.series_csv, b.series_csv);
}

TEST(TraceDeterminismTest, HoldsUnderInjectedFailuresToo) {
  const TracedRun a = RunOnce(/*with_failure=*/true);
  const TracedRun b = RunOnce(/*with_failure=*/true);
  EXPECT_GT(a.events, 0u);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.series_csv, b.series_csv);
}

}  // namespace
}  // namespace tornado
