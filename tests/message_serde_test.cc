// Round-trip tests for the wire-format layer: every protocol message must
// survive SerializeMessage -> DeserializeMessage with all fields intact
// (the SER-001 lint rule keeps the registry itself complete).
#include "core/message_serde.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/messages.h"
#include "tests/test_util.h"

namespace tornado {
namespace {

template <typename T>
std::shared_ptr<T> RoundTrip(const T& msg) {
  BufferWriter w;
  EXPECT_TRUE(SerializeMessage(msg, &w));
  BufferReader r(w.data());
  std::shared_ptr<Payload> out = DeserializeMessage(&r);
  EXPECT_NE(out, nullptr);
  EXPECT_TRUE(r.AtEnd()) << "trailing bytes after " << msg.name();
  auto typed = std::dynamic_pointer_cast<T>(out);
  EXPECT_NE(typed, nullptr) << "tag decoded to the wrong type";
  return typed;
}

TEST(MessageSerdeTest, RegistryCoversEveryWireMessage) {
  const std::vector<std::string> names = RegisteredMessageNames();
  for (const char* expected :
       {"InputMsg", "UpdateMsg", "PrepareMsg", "AckMsg", "ProgressMsg",
        "TerminatedMsg", "ForkBranchMsg", "StopLoopMsg", "RestartLoopMsg",
        "AdoptMergeMsg", "ProcessorHelloMsg", "MasterHelloMsg", "QueryMsg",
        "QueryResultMsg"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected << " missing from the registry";
  }
  EXPECT_EQ(names.size(), 14u);
}

TEST(MessageSerdeTest, InputMsgWithEachDeltaAlternative) {
  InputMsg edge;
  edge.loop = 3;
  edge.epoch = 1;
  edge.target = 77;
  edge.delta = EdgeDelta{5, 9, 2.5, /*insert=*/false};
  auto out = RoundTrip(edge);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->loop, 3u);
  EXPECT_EQ(out->target, 77u);
  const auto& e = std::get<EdgeDelta>(out->delta);
  EXPECT_EQ(e.src, 5u);
  EXPECT_EQ(e.dst, 9u);
  EXPECT_DOUBLE_EQ(e.weight, 2.5);
  EXPECT_FALSE(e.insert);

  InputMsg point;
  point.delta = PointDelta{11, {1.0, -2.0, 3.5}, true};
  auto pout = RoundTrip(point);
  ASSERT_NE(pout, nullptr);
  const auto& p = std::get<PointDelta>(pout->delta);
  EXPECT_EQ(p.id, 11u);
  EXPECT_EQ(p.coords, (std::vector<double>{1.0, -2.0, 3.5}));

  InputMsg instance;
  instance.delta = InstanceDelta{7, {{2, 0.5}, {19, -1.25}}, -1.0, true};
  auto iout = RoundTrip(instance);
  ASSERT_NE(iout, nullptr);
  const auto& ins = std::get<InstanceDelta>(iout->delta);
  EXPECT_EQ(ins.id, 7u);
  ASSERT_EQ(ins.features.size(), 2u);
  EXPECT_EQ(ins.features[1].first, 19u);
  EXPECT_DOUBLE_EQ(ins.features[1].second, -1.25);
  EXPECT_DOUBLE_EQ(ins.label, -1.0);
}

TEST(MessageSerdeTest, UpdateMsgCarriesTheVertexUpdate) {
  UpdateMsg msg;
  msg.loop = 2;
  msg.epoch = 4;
  msg.src_vertex = 10;
  msg.dst_vertex = 20;
  msg.iteration = 6;
  msg.update.kind = kNoopUpdateKind;
  msg.update.values = {0.25, 4.0};
  auto out = RoundTrip(msg);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->iteration, 6u);
  EXPECT_EQ(out->update.kind, kNoopUpdateKind);
  EXPECT_EQ(out->update.values, (std::vector<double>{0.25, 4.0}));
}

TEST(MessageSerdeTest, PrepareMsgCarriesTheLamportStamp) {
  PrepareMsg msg;
  msg.loop = 1;
  msg.src_vertex = 3;
  msg.dst_vertex = 4;
  msg.time = LamportTime{99, 2};
  auto out = RoundTrip(msg);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->time, (LamportTime{99, 2}));
}

TEST(MessageSerdeTest, CauseIdRidesTheEnvelopeOfEveryMessage) {
  // The causal round id lives on the Payload base and is serialized by the
  // envelope, so every message type carries it without per-type fields.
  PrepareMsg prep;
  prep.loop = 1;
  prep.cause_id = (uint64_t{3} << 40) | 17;
  EXPECT_EQ(RoundTrip(prep)->cause_id, (uint64_t{3} << 40) | 17);

  AckMsg ack;
  ack.cause_id = 42;
  EXPECT_EQ(RoundTrip(ack)->cause_id, 42u);

  UpdateMsg upd;
  upd.update.kind = kNoopUpdateKind;
  upd.cause_id = 0;  // untracked stays untracked
  EXPECT_EQ(RoundTrip(upd)->cause_id, 0u);

  TerminatedMsg term;
  term.upto = 5;
  term.cause_id = 0xFFFFFFFFFFFFFFFFull;  // full 64-bit range survives
  EXPECT_EQ(RoundTrip(term)->cause_id, 0xFFFFFFFFFFFFFFFFull);
}

TEST(MessageSerdeTest, ProgressMsgBucketsSurvive) {
  ProgressMsg msg;
  msg.loop = 0;
  msg.epoch = 2;
  msg.processor = 3;
  msg.local_tau = 5;
  msg.min_work_iter = kNoIteration;
  msg.blocked_updates = 17;
  msg.inputs_gathered = 400;
  msg.prepares_sent = 250;
  msg.progress_sum = 1.5;
  msg.report_seq = 12;
  msg.buckets[4] = IterationCounters{10, 9, 8, 7, 0.5};
  msg.buckets[6] = IterationCounters{1, 2, 3, 4, 0.25};
  auto out = RoundTrip(msg);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->min_work_iter, kNoIteration);
  ASSERT_EQ(out->buckets.size(), 2u);
  EXPECT_EQ(out->buckets.at(4).committed, 10u);
  EXPECT_EQ(out->buckets.at(6).gathered, 4u);
  EXPECT_DOUBLE_EQ(out->buckets.at(6).progress, 0.25);
  EXPECT_EQ(out->report_seq, 12u);
}

TEST(MessageSerdeTest, ControlMessagesRoundTrip) {
  TerminatedMsg term;
  term.loop = 1;
  term.epoch = 2;
  term.upto = 30;
  EXPECT_EQ(RoundTrip(term)->upto, 30u);

  ForkBranchMsg fork;
  fork.branch = 9;
  fork.parent = 0;
  fork.snapshot_iteration = 21;
  fork.query_id = 1234;
  auto fout = RoundTrip(fork);
  ASSERT_NE(fout, nullptr);
  EXPECT_EQ(fout->branch, 9u);
  EXPECT_EQ(fout->query_id, 1234u);

  StopLoopMsg stop;
  stop.loop = 9;
  EXPECT_EQ(RoundTrip(stop)->loop, 9u);

  RestartLoopMsg restart;
  restart.loop = 0;
  restart.new_epoch = 3;
  restart.from_iteration = 14;
  auto rout = RoundTrip(restart);
  ASSERT_NE(rout, nullptr);
  EXPECT_EQ(rout->new_epoch, 3u);
  EXPECT_EQ(rout->from_iteration, 14u);

  AdoptMergeMsg adopt;
  adopt.merge_iteration = 44;
  EXPECT_EQ(RoundTrip(adopt)->merge_iteration, 44u);

  ProcessorHelloMsg hello;
  hello.processor = 2;
  hello.restarted = true;
  auto hout = RoundTrip(hello);
  ASSERT_NE(hout, nullptr);
  EXPECT_TRUE(hout->restarted);

  MasterHelloMsg master_hello;
  EXPECT_NE(RoundTrip(master_hello), nullptr);

  QueryMsg query;
  query.query_id = 55;
  query.submit_time = 1.75;
  EXPECT_DOUBLE_EQ(RoundTrip(query)->submit_time, 1.75);

  QueryResultMsg result;
  result.query_id = 55;
  result.branch = 6;
  result.converged_iteration = 18;
  result.submit_time = 1.75;
  auto qout = RoundTrip(result);
  ASSERT_NE(qout, nullptr);
  EXPECT_EQ(qout->converged_iteration, 18u);
}

TEST(MessageSerdeTest, UnknownTagAndTruncationFailCleanly) {
  BufferWriter w;
  w.PutU8(0xEE);  // tag far beyond the registry
  BufferReader r(w.data());
  EXPECT_EQ(DeserializeMessage(&r), nullptr);

  UpdateMsg msg;
  msg.update.values = {1.0, 2.0, 3.0};
  BufferWriter full;
  ASSERT_TRUE(SerializeMessage(msg, &full));
  BufferReader truncated(full.data().data(), full.size() / 2);
  EXPECT_EQ(DeserializeMessage(&truncated), nullptr);
}

}  // namespace
}  // namespace tornado
