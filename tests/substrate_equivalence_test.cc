// Cross-backend equivalence (docs/RUNTIME.md): the same job must behave
// identically on the deterministic simulation across runs (byte-identical
// causal trace), and the thread backend — real OS threads, wall clock,
// in-process mailboxes — must converge to the same pagerank fixed point
// once both backends have ingested the identical stream.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algos/pagerank.h"
#include "check/invariant_checker.h"
#include "core/cluster.h"
#include "runtime/thread_substrate.h"
#include "stream/graph_stream.h"
#include "trace/trace_recorder.h"

namespace tornado {
namespace {

constexpr uint64_t kVertices = 80;
constexpr uint64_t kTuples = 500;

JobConfig MakeConfig(SubstrateBackend backend) {
  JobConfig config;
  // Tolerance far below the comparison bound: the branch loops then relax
  // all the way to the (unique) fixed point of the final graph, so both
  // backends must agree to ~1e-11 even though their main loops took
  // different paths to it.
  config.program =
      std::make_shared<PageRankProgram>(/*damping=*/0.85, /*tolerance=*/1e-12);
  config.delay_bound = 64;
  config.num_processors = 4;  // thread backend: >= 4 real node threads
  config.num_hosts = 2;
  config.ingest_rate = 8000.0;
  config.merge_branches = true;
  config.seed = 42;
  config.backend = backend;
  return config;
}

GraphStreamOptions MakeStream() {
  GraphStreamOptions options;
  options.num_vertices = kVertices;
  options.num_tuples = kTuples;
  options.preferential = 0.7;
  options.deletion_ratio = 0.05;
  return options;
}

// Ingests the whole stream, queries the final graph, and returns the
// converged branch ranks keyed by vertex. The invariant checker rides
// along; any protocol violation fails the test.
std::map<VertexId, double> RunToFixedPoint(SubstrateBackend backend,
                                           std::string* trace_json) {
  JobConfig config = MakeConfig(backend);

  // Declared before the cluster: observers must outlive it (on the thread
  // backend, node threads report into the checker until Shutdown joins).
  CheckObserver::Options check_options;
  check_options.abort_on_violation = false;
  CheckObserver checker(check_options);

  TornadoCluster cluster(config, std::make_unique<GraphStream>(MakeStream()));
  cluster.AddEngineObserver(&checker);

  if (trace_json != nullptr) cluster.EnableTracing();

  cluster.Start();
  EXPECT_TRUE(cluster.RunUntilEmitted(kTuples, 600.0));
  cluster.ingester().Pause();
  cluster.RunFor(0.3);  // drain in-flight input

  const uint64_t query = cluster.ingester().SubmitQuery();
  EXPECT_TRUE(cluster.RunUntilQueryDone(query, 600.0));
  const LoopId branch = cluster.BranchOf(query);

  std::map<VertexId, double> ranks;
  for (VertexId v = 0; v < kVertices; ++v) {
    auto state = cluster.ReadVertexState(branch, v);
    if (state == nullptr) continue;
    ranks[v] = static_cast<const PageRankState&>(*state).rank;
  }
  EXPECT_FALSE(ranks.empty());

  cluster.DeepCheckInvariants();
  EXPECT_TRUE(checker.violations().empty())
      << checker.violations().size() << " protocol violations on the "
      << cluster.substrate().name() << " backend, first: "
      << (checker.violations().empty()
              ? ""
              : checker.violations()[0].invariant + ": " +
                    checker.violations()[0].detail);

  if (trace_json != nullptr) {
    std::ostringstream os;
    cluster.trace()->WriteChromeTrace(os);
    *trace_json = os.str();
  }
  return ranks;
}

TEST(SubstrateEquivalenceTest, SimRunsAreByteIdentical) {
  std::string trace_a;
  std::string trace_b;
  const auto ranks_a = RunToFixedPoint(SubstrateBackend::kSim, &trace_a);
  const auto ranks_b = RunToFixedPoint(SubstrateBackend::kSim, &trace_b);

  ASSERT_FALSE(trace_a.empty());
  // The full causal trace — every event, timestamp, and argument — must
  // match byte for byte: the sim backend's determinism guarantee.
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(ranks_a, ranks_b);
}

TEST(SubstrateEquivalenceTest, ThreadBackendReachesSimFixedPoint) {
  const auto sim_ranks = RunToFixedPoint(SubstrateBackend::kSim, nullptr);
  const auto thread_ranks =
      RunToFixedPoint(SubstrateBackend::kThread, nullptr);

  // Both backends ingested the identical stream (it is exhausted before
  // the query), so the branch loops solve the same system and must land
  // on the same fixed point.
  ASSERT_EQ(sim_ranks.size(), thread_ranks.size());
  double max_delta = 0.0;
  for (const auto& [vertex, rank] : sim_ranks) {
    const auto it = thread_ranks.find(vertex);
    ASSERT_NE(it, thread_ranks.end()) << "vertex " << vertex;
    max_delta = std::max(max_delta, std::fabs(rank - it->second));
  }
  EXPECT_LE(max_delta, 1e-9) << "backends diverged by " << max_delta;
}

// --- Mailbox contention --------------------------------------------------
//
// Many node threads hammering a single target mailbox is the thread
// backend's worst case for the per-node Mutex in ThreadTransport::NodeRec.
// This test exists to run under the thread-substrate TSan CI job: any
// unguarded access on the mailbox path (enqueue vs. drain vs. depth
// probes) shows up as a data race here.

struct PingMsg final : Payload {
  const char* name() const override { return "ping"; }
};

class SinkNode final : public Node {
 public:
  void OnMessage(NodeId /*src*/, const Payload& /*msg*/) override {
    received_.fetch_add(1, std::memory_order_relaxed);
  }

  int64_t received() const {
    return received_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> received_{0};
};

// Sends `bursts` batches of `per_burst` messages at the sink, yielding
// back to its own mailbox between batches so deliveries from all hammers
// interleave rather than serialize.
class HammerNode final : public Node {
 public:
  HammerNode(NodeId sink, int bursts, int per_burst)
      : sink_(sink), bursts_left_(bursts), per_burst_(per_burst) {}

  void OnMessage(NodeId /*src*/, const Payload& /*msg*/) override {}

  void Kick() {
    ScheduleSelf(0.0, [this] { Burst(); });
  }

 private:
  void Burst() {
    for (int i = 0; i < per_burst_; ++i) {
      Send(sink_, std::make_shared<PingMsg>(), /*reliable=*/true);
    }
    if (--bursts_left_ > 0) ScheduleSelf(0.0, [this] { Burst(); });
  }

  const NodeId sink_;
  int bursts_left_;  // touched only on this node's service thread
  const int per_burst_;
};

TEST(SubstrateEquivalenceTest, ThreadMailboxContentionDrainsClean) {
  constexpr int kHammers = 16;
  constexpr int kBursts = 20;
  constexpr int kPerBurst = 25;
  constexpr int64_t kExpected =
      static_cast<int64_t>(kHammers) * kBursts * kPerBurst;

  // Nodes are declared before the substrate so the substrate's
  // destructor (which joins the service threads) runs first on any
  // early-exit path.
  SinkNode sink;
  std::vector<std::unique_ptr<HammerNode>> hammers;
  for (int i = 0; i < kHammers; ++i) {
    hammers.push_back(
        std::make_unique<HammerNode>(/*sink=*/0, kBursts, kPerBurst));
  }

  ThreadSubstrate substrate(/*base_seed=*/7);
  substrate.thread_transport()->RegisterNode(&sink, /*host=*/0,
                                             /*speed_factor=*/1.0);
  ASSERT_EQ(sink.id(), 0u);
  for (auto& hammer : hammers) {
    substrate.thread_transport()->RegisterNode(hammer.get(), /*host=*/1,
                                               /*speed_factor=*/1.0);
    hammer->Kick();  // queued behind the start gate until Start()
  }

  substrate.Start();
  const bool drained = substrate.RunUntil(
      [&] {
        return sink.received() == kExpected &&
               substrate.thread_transport()->InFlightCount() == 0;
      },
      /*timeout=*/120.0, /*check_every=*/0.001);
  EXPECT_TRUE(drained) << "delivered " << sink.received() << " of "
                       << kExpected << ", in flight "
                       << substrate.thread_transport()->InFlightCount();
  substrate.Shutdown();

  EXPECT_EQ(sink.received(), kExpected);
  EXPECT_EQ(substrate.thread_transport()->InFlightCount(), 0u);
  EXPECT_EQ(substrate.thread_transport()->InboxDepth(0), 0u);
}

}  // namespace
}  // namespace tornado
