// Cross-backend equivalence (docs/RUNTIME.md): the same job must behave
// identically on the deterministic simulation across runs (byte-identical
// causal trace); the parallel simulation must reproduce the serial trace
// byte for byte at every shard count (docs/PARSIM.md); and the thread
// backend — real OS threads, wall clock, in-process mailboxes — must
// converge to the same pagerank fixed point once both backends have
// ingested the identical stream.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algos/pagerank.h"
#include "check/invariant_checker.h"
#include "core/cluster.h"
#include "runtime/par_sim_substrate.h"
#include "runtime/thread_substrate.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "sim/cost_model.h"
#include "stream/graph_stream.h"
#include "trace/trace_recorder.h"

namespace tornado {
namespace {

constexpr uint64_t kVertices = 80;
constexpr uint64_t kTuples = 500;

// Trace-comparing runs must not overflow the recorder: the serial
// backend has one lane and par_sim has shards + 1, so a per-lane cap
// truncates the two runs at *different* suffixes and the byte
// comparison reports a bogus divergence. The full fixed-point workload
// above records tens of millions of events (the 1e-12 branch relaxation
// runs thousands of iterations), so the byte-identity tests run a
// compact variant — byte-identity is a property of the simulation
// machinery, not of convergence depth — with lanes sized well above the
// run and a zero-drop assertion.
constexpr uint64_t kTraceVertices = 16;
constexpr uint64_t kTraceTuples = 100;
constexpr double kTraceTolerance = 1e-7;
constexpr size_t kTraceMaxEvents = 4'000'000;

// Workload knobs for one RunToFixedPoint call; defaults reproduce the
// full fixed-point run the rank-comparison tests use.
struct RunParams {
  uint64_t vertices = kVertices;
  uint64_t tuples = kTuples;
  double tolerance = 1e-12;
  uint32_t shards = 4;
};

constexpr RunParams kTraceRun = {kTraceVertices, kTraceTuples,
                                 kTraceTolerance, /*shards=*/4};

// gtest's failure printer for multi-megabyte strings is useless; report
// the first divergent byte and a little context instead.
testing::AssertionResult TracesIdentical(const std::string& a,
                                         const std::string& b) {
  if (a == b) return testing::AssertionSuccess();
  size_t i = 0;
  const size_t n = std::min(a.size(), b.size());
  while (i < n && a[i] == b[i]) ++i;
  const size_t from = i < 80 ? 0 : i - 80;
  return testing::AssertionFailure()
         << "traces diverge at byte " << i << " (sizes " << a.size() << " vs "
         << b.size() << ")\n  a: ..." << a.substr(from, 160) << "\n  b: ..."
         << b.substr(from, 160);
}

JobConfig MakeConfig(SubstrateBackend backend, const RunParams& params) {
  JobConfig config;
  // The default tolerance sits far below the comparison bound: the
  // branch loops then relax all the way to the (unique) fixed point of
  // the final graph, so both backends must agree to ~1e-11 even though
  // their main loops took different paths to it.
  config.program = std::make_shared<PageRankProgram>(/*damping=*/0.85,
                                                     params.tolerance);
  config.delay_bound = 64;
  config.num_processors = 4;  // thread backend: >= 4 real node threads
  config.num_hosts = 2;
  config.ingest_rate = 8000.0;
  config.merge_branches = true;
  config.seed = 42;
  config.backend = backend;
  config.sim_shards = params.shards;
  return config;
}

GraphStreamOptions MakeStream(const RunParams& params) {
  GraphStreamOptions options;
  options.num_vertices = params.vertices;
  options.num_tuples = params.tuples;
  options.preferential = 0.7;
  options.deletion_ratio = 0.05;
  return options;
}

// Ingests the whole stream, queries the final graph, and returns the
// converged branch ranks keyed by vertex. The invariant checker rides
// along; any protocol violation fails the test.
std::map<VertexId, double> RunToFixedPoint(SubstrateBackend backend,
                                           std::string* trace_json,
                                           const RunParams& params = {}) {
  JobConfig config = MakeConfig(backend, params);

  // Declared before the cluster: observers must outlive it (on the thread
  // backend, node threads report into the checker until Shutdown joins).
  CheckObserver::Options check_options;
  check_options.abort_on_violation = false;
  CheckObserver checker(check_options);

  TornadoCluster cluster(config,
                         std::make_unique<GraphStream>(MakeStream(params)));
  cluster.AddEngineObserver(&checker);

  if (trace_json != nullptr) cluster.EnableTracing(kTraceMaxEvents);

  cluster.Start();
  EXPECT_TRUE(cluster.RunUntilEmitted(params.tuples, 600.0));
  cluster.ingester().Pause();
  cluster.RunFor(0.3);  // drain in-flight input

  const uint64_t query = cluster.ingester().SubmitQuery();
  EXPECT_TRUE(cluster.RunUntilQueryDone(query, 600.0));
  const LoopId branch = cluster.BranchOf(query);

  std::map<VertexId, double> ranks;
  for (VertexId v = 0; v < params.vertices; ++v) {
    auto state = cluster.ReadVertexState(branch, v);
    if (state == nullptr) continue;
    ranks[v] = static_cast<const PageRankState&>(*state).rank;
  }
  EXPECT_FALSE(ranks.empty());

  cluster.DeepCheckInvariants();
  EXPECT_TRUE(checker.violations().empty())
      << checker.violations().size() << " protocol violations on the "
      << cluster.substrate().name() << " backend, first: "
      << (checker.violations().empty()
              ? ""
              : checker.violations()[0].invariant + ": " +
                    checker.violations()[0].detail);

  if (trace_json != nullptr) {
    EXPECT_EQ(cluster.trace()->dropped(), 0u)
        << "trace overflow voids the byte-identity comparison; raise "
           "kTraceMaxEvents";
    std::ostringstream os;
    cluster.trace()->WriteChromeTrace(os);
    *trace_json = os.str();
  }
  return ranks;
}

TEST(SubstrateEquivalenceTest, SimRunsAreByteIdentical) {
  std::string trace_a;
  std::string trace_b;
  const auto ranks_a =
      RunToFixedPoint(SubstrateBackend::kSim, &trace_a, kTraceRun);
  const auto ranks_b =
      RunToFixedPoint(SubstrateBackend::kSim, &trace_b, kTraceRun);

  ASSERT_FALSE(trace_a.empty());
  // The full causal trace — every event, timestamp, and argument — must
  // match byte for byte: the sim backend's determinism guarantee.
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(ranks_a, ranks_b);
}

TEST(SubstrateEquivalenceTest, ThreadBackendReachesSimFixedPoint) {
  const auto sim_ranks = RunToFixedPoint(SubstrateBackend::kSim, nullptr);
  const auto thread_ranks =
      RunToFixedPoint(SubstrateBackend::kThread, nullptr);

  // Both backends ingested the identical stream (it is exhausted before
  // the query), so the branch loops solve the same system and must land
  // on the same fixed point.
  ASSERT_EQ(sim_ranks.size(), thread_ranks.size());
  double max_delta = 0.0;
  for (const auto& [vertex, rank] : sim_ranks) {
    const auto it = thread_ranks.find(vertex);
    ASSERT_NE(it, thread_ranks.end()) << "vertex " << vertex;
    max_delta = std::max(max_delta, std::fabs(rank - it->second));
  }
  EXPECT_LE(max_delta, 1e-9) << "backends diverged by " << max_delta;
}

// --- Parallel simulation ---------------------------------------------------

// The core par_sim claim (docs/PARSIM.md): the sharded conservative-window
// simulation is not merely deterministic, it reproduces the *serial*
// backend's causal trace byte for byte — same events, same virtual
// timestamps, same arguments, same file bytes — at any shard count.
TEST(SubstrateEquivalenceTest, ParSimMatchesSimTraceByteForByte) {
  std::string sim_trace;
  const auto sim_ranks =
      RunToFixedPoint(SubstrateBackend::kSim, &sim_trace, kTraceRun);
  ASSERT_FALSE(sim_trace.empty());

  for (const uint32_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("par_sim shards=" + std::to_string(shards));
    std::string par_trace;
    RunParams par_params = kTraceRun;
    par_params.shards = shards;
    const auto par_ranks =
        RunToFixedPoint(SubstrateBackend::kParSim, &par_trace, par_params);
    EXPECT_TRUE(TracesIdentical(sim_trace, par_trace));
    EXPECT_EQ(sim_ranks, par_ranks);
  }
}

// Replays a corpus scenario — fig8d's processor crash/restart timeline,
// scaled down — through the ScenarioRunner on both sim backends and
// demands identical traces, identical figure series, and identical final
// counters. This covers what the plain pagerank run cannot: failure
// injection (kill/recover broadcast to mirrors), drive-boundary action
// application, and the bucketed sampling path.
TEST(SubstrateEquivalenceTest, ParSimMatchesSimOnFig8dScenario) {
  scenario::Scenario base;
  std::vector<std::string> errors;
  const std::string path =
      std::string(TORNADO_SCENARIO_CORPUS) + "/fig8d_processor_failure.json";
  ASSERT_TRUE(scenario::LoadScenarioFile(path, &base, &errors))
      << (errors.empty() ? path : errors[0]);

  // Scale the corpus run down to test size; keep the crash inside the
  // sampled window and the recovery inside it too.
  base.workload.tuples = 2600;
  base.drive.warmup_tuples = 1300;
  base.drive.settle_seconds = 0.25;
  base.drive.sample_count = 24;
  ASSERT_FALSE(base.timeline.empty());
  base.timeline[0].downtime = 0.25;

  auto run = [](const scenario::Scenario& s, std::string* trace) {
    scenario::RunOptions options;
    options.after_build = [](TornadoCluster& c) {
      c.EnableTracing(kTraceMaxEvents);
    };
    scenario::ScenarioRunner runner(s, std::move(options));
    scenario::ScenarioVerdict verdict = runner.Run();
    EXPECT_EQ(runner.cluster()->trace()->dropped(), 0u);
    std::ostringstream os;
    runner.cluster()->trace()->WriteChromeTrace(os);
    *trace = os.str();
    return verdict;
  };

  scenario::Scenario par = base;
  par.backend = SubstrateBackend::kParSim;
  par.shards = 3;  // 6 hosts -> two per shard, master and ingester split

  std::string sim_trace;
  std::string par_trace;
  const auto sim_verdict = run(base, &sim_trace);
  const auto par_verdict = run(par, &par_trace);

  EXPECT_TRUE(sim_verdict.completed && sim_verdict.invariants_held)
      << sim_verdict.Summary();
  EXPECT_TRUE(par_verdict.completed && par_verdict.invariants_held)
      << par_verdict.Summary();
  ASSERT_FALSE(sim_trace.empty());
  EXPECT_TRUE(TracesIdentical(sim_trace, par_trace));
  EXPECT_EQ(sim_verdict.updates_per_bucket, par_verdict.updates_per_bucket);
  EXPECT_EQ(sim_verdict.counters, par_verdict.counters);
  EXPECT_EQ(sim_verdict.fixed_point_reached, par_verdict.fixed_point_reached);
}

// --- Mailbox contention --------------------------------------------------
//
// Many node threads hammering a single target mailbox is the thread
// backend's worst case for the per-node Mutex in ThreadTransport::NodeRec.
// This test exists to run under the thread-substrate TSan CI job: any
// unguarded access on the mailbox path (enqueue vs. drain vs. depth
// probes) shows up as a data race here.

struct PingMsg final : Payload {
  const char* name() const override { return "ping"; }
};

class SinkNode final : public Node {
 public:
  void OnMessage(NodeId /*src*/, const Payload& /*msg*/) override {
    received_.fetch_add(1, std::memory_order_relaxed);
  }

  int64_t received() const {
    return received_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> received_{0};
};

// Sends `bursts` batches of `per_burst` messages at the sink, yielding
// back to its own mailbox between batches so deliveries from all hammers
// interleave rather than serialize.
class HammerNode final : public Node {
 public:
  HammerNode(NodeId sink, int bursts, int per_burst)
      : sink_(sink), bursts_left_(bursts), per_burst_(per_burst) {}

  void OnMessage(NodeId /*src*/, const Payload& /*msg*/) override {}

  void Kick() {
    ScheduleSelf(0.0, [this] { Burst(); });
  }

 private:
  void Burst() {
    for (int i = 0; i < per_burst_; ++i) {
      Send(sink_, std::make_shared<PingMsg>(), /*reliable=*/true);
    }
    if (--bursts_left_ > 0) ScheduleSelf(0.0, [this] { Burst(); });
  }

  const NodeId sink_;
  int bursts_left_;  // touched only on this node's service thread
  const int per_burst_;
};

TEST(SubstrateEquivalenceTest, ThreadMailboxContentionDrainsClean) {
  constexpr int kHammers = 16;
  constexpr int kBursts = 20;
  constexpr int kPerBurst = 25;
  constexpr int64_t kExpected =
      static_cast<int64_t>(kHammers) * kBursts * kPerBurst;

  // Nodes are declared before the substrate so the substrate's
  // destructor (which joins the service threads) runs first on any
  // early-exit path.
  SinkNode sink;
  std::vector<std::unique_ptr<HammerNode>> hammers;
  for (int i = 0; i < kHammers; ++i) {
    hammers.push_back(
        std::make_unique<HammerNode>(/*sink=*/0, kBursts, kPerBurst));
  }

  ThreadSubstrate substrate(/*base_seed=*/7);
  substrate.thread_transport()->RegisterNode(&sink, /*host=*/0,
                                             /*speed_factor=*/1.0);
  ASSERT_EQ(sink.id(), 0u);
  for (auto& hammer : hammers) {
    substrate.thread_transport()->RegisterNode(hammer.get(), /*host=*/1,
                                               /*speed_factor=*/1.0);
    hammer->Kick();  // queued behind the start gate until Start()
  }

  substrate.Start();
  const bool drained = substrate.RunUntil(
      [&] {
        return sink.received() == kExpected &&
               substrate.thread_transport()->InFlightCount() == 0;
      },
      /*timeout=*/120.0, /*check_every=*/0.001);
  EXPECT_TRUE(drained) << "delivered " << sink.received() << " of "
                       << kExpected << ", in flight "
                       << substrate.thread_transport()->InFlightCount();
  substrate.Shutdown();

  EXPECT_EQ(sink.received(), kExpected);
  EXPECT_EQ(substrate.thread_transport()->InFlightCount(), 0u);
  EXPECT_EQ(substrate.thread_transport()->InboxDepth(0), 0u);
}

// --- Shutdown ordering -----------------------------------------------------
//
// Send() is lossless on both concurrent backends, so a run that ends the
// instant after a burst must still deliver every accepted message: the
// thread backend drains each mailbox when its service thread observes
// stop, and the parallel sim injects outbox packets at every barrier (and
// sweeps any residue in Shutdown) so slice boundaries that land mid-window
// never strand a cross-shard message.

TEST(SubstrateEquivalenceTest, ThreadShutdownDeliversAcceptedMessages) {
  constexpr int64_t kCount = 200;

  SinkNode sink;
  ThreadSubstrate substrate(/*base_seed=*/11);
  substrate.thread_transport()->RegisterNode(&sink, /*host=*/0,
                                             /*speed_factor=*/1.0);
  substrate.Start();
  // Race the burst against Shutdown: the sink's service thread has had no
  // time to drain 200 messages when stop is raised, so most of them are
  // still queued and only the stop-time drain can deliver them.
  for (int64_t i = 0; i < kCount; ++i) {
    substrate.thread_transport()->Send(/*src=*/0, /*dst=*/0,
                                       std::make_shared<PingMsg>(),
                                       /*reliable=*/true);
  }
  substrate.Shutdown();

  EXPECT_EQ(sink.received(), kCount);
  EXPECT_EQ(substrate.thread_transport()->InFlightCount(), 0);
  EXPECT_EQ(substrate.thread_transport()->InboxDepth(0), 0u);
}

TEST(SubstrateEquivalenceTest, ParSimMidWindowSlicesLoseNoMessages) {
  constexpr int kBursts = 8;
  constexpr int kPerBurst = 16;
  constexpr int64_t kExpected = static_cast<int64_t>(kBursts) * kPerBurst;

  SinkNode sink;  // registered first -> NodeId 0, host 1 -> shard 1
  HammerNode hammer(/*sink=*/0, kBursts, kPerBurst);  // host 0 -> shard 0

  const CostModel cost;
  ParSimSubstrate substrate(cost, /*base_seed=*/5, /*num_shards=*/2);
  substrate.transport()->RegisterNode(&sink, /*host=*/1);
  substrate.transport()->RegisterNode(&hammer, /*host=*/0);
  hammer.Kick();
  substrate.Start();

  // Advance in slices far smaller than the conservative window, so every
  // RunFor boundary lands mid-window with cross-shard packets in flight.
  // Nothing may be stranded at a boundary: each subsequent slice must
  // keep delivering until all bursts arrive.
  const double lookahead = cost.net_latency * (1.0 - cost.net_jitter);
  const double slice = lookahead / 7.0;
  int slices = 0;
  while (sink.received() < kExpected && slices < 20000) {
    substrate.RunFor(slice);
    ++slices;
  }
  EXPECT_EQ(sink.received(), kExpected)
      << "after " << slices << " mid-window slices";
  EXPECT_EQ(substrate.transport()->InboxDepth(0), 0u);

  substrate.Shutdown();
  substrate.Shutdown();  // idempotent
  EXPECT_EQ(sink.received(), kExpected);
}

}  // namespace
}  // namespace tornado
