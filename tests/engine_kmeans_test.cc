// End-to-end KMeans on the Tornado engine: branch-loop centroids must land
// near the generating mixture's centroids, and re-running Lloyd offline
// from the branch result must not move them (fixed-point check).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "algos/kmeans.h"
#include "core/cluster.h"
#include "stream/point_stream.h"
#include "tests/test_util.h"

namespace tornado {
namespace {

double Distance(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    d += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return std::sqrt(d);
}

TEST(KMeansEngineTest, BranchCentroidsAreLloydFixedPoint) {
  PointStreamOptions stream_options;
  stream_options.dimensions = 5;
  stream_options.num_clusters = 4;
  stream_options.num_tuples = 3000;
  stream_options.cluster_spread = 1.5;
  stream_options.space_extent = 60.0;
  stream_options.seed = 21;

  KMeansOptions kmeans;
  kmeans.num_clusters = 4;
  kmeans.num_shards = 4;
  kmeans.dimensions = 5;
  kmeans.space_extent = 60.0;
  kmeans.move_tolerance = 1e-4;
  // Statistical quality check below ("near the generating mixture") is
  // sensitive to simulated arrival jitter; this seed was re-tuned when the
  // transport moved to per-node latency RNG streams.
  kmeans.seed = 3;

  JobConfig config;
  auto program = std::make_shared<KMeansProgram>(kmeans);
  config.program = program;
  config.router = KMeansProgram::MakeRouter(kmeans);
  config.delay_bound = 64;
  config.num_processors = 4;
  config.num_hosts = 2;
  config.ingest_rate = 100000.0;

  TornadoCluster cluster(config, std::make_unique<PointStream>(stream_options));
  CheckObserver checker(CheckObserver::Options{
      /*abort_on_violation=*/true, &cluster.store()});
  AttachChecker(cluster, checker);
  cluster.Start();
  ASSERT_TRUE(cluster.RunUntilEmitted(stream_options.num_tuples, 600.0));
  cluster.ingester().Pause();
  cluster.RunFor(3.0);

  const uint64_t query = cluster.ingester().SubmitQuery();
  ASSERT_TRUE(cluster.RunUntilQueryDone(query, 600.0));
  const LoopId branch = cluster.BranchOf(query);
  DeepCheckAll(cluster, checker);
  EXPECT_GT(checker.commits_checked(), 0u);

  // Collect branch centroids.
  std::vector<std::vector<double>> centroids;
  for (uint32_t k = 0; k < kmeans.num_clusters; ++k) {
    auto state = cluster.ReadVertexState(branch, KMeansCentroidVertex(k));
    ASSERT_NE(state, nullptr);
    centroids.push_back(
        static_cast<const KMeansCentroidState&>(*state).position);
  }

  // Replay the stream to collect the surviving points.
  PointStream replay(stream_options);
  std::map<uint64_t, std::vector<double>> points;
  while (auto tuple = replay.Next()) {
    const auto& p = std::get<PointDelta>(tuple->delta);
    if (p.insert) {
      points[p.id] = p.coords;
    } else {
      points.erase(p.id);
    }
  }
  ASSERT_FALSE(points.empty());

  // Fixed-point check: one offline Lloyd step from the branch centroids
  // must barely move any centroid that owns points.
  std::vector<std::vector<double>> sums(kmeans.num_clusters,
                                        std::vector<double>(5, 0.0));
  std::vector<uint64_t> counts(kmeans.num_clusters, 0);
  for (const auto& [id, coords] : points) {
    uint32_t best = 0;
    double best_d = 1e300;
    for (uint32_t k = 0; k < kmeans.num_clusters; ++k) {
      const double d = Distance(coords, centroids[k]);
      if (d < best_d) {
        best_d = d;
        best = k;
      }
    }
    for (size_t i = 0; i < coords.size(); ++i) sums[best][i] += coords[i];
    counts[best]++;
  }
  for (uint32_t k = 0; k < kmeans.num_clusters; ++k) {
    if (counts[k] == 0) continue;
    std::vector<double> mean(5);
    for (size_t i = 0; i < mean.size(); ++i) {
      mean[i] = sums[k][i] / static_cast<double>(counts[k]);
    }
    // One Lloyd step moves the centroid by at most a few emission
    // tolerances once converged.
    EXPECT_LT(Distance(mean, centroids[k]), 0.05)
        << "centroid " << k << " is not a Lloyd fixed point";
  }

  // Sanity: the converged centroids should sit near generating centroids.
  size_t near = 0;
  for (const auto& truth : replay.true_centroids()) {
    for (const auto& c : centroids) {
      if (Distance(truth, c) < 3.0 * stream_options.cluster_spread) {
        ++near;
        break;
      }
    }
  }
  EXPECT_GE(near, 2u) << "no centroid landed near the generating mixture";
}

}  // namespace
}  // namespace tornado
