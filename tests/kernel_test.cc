// Tests for the SIMD/SoA kernel substrate (src/kernel/):
//
//  - SmallVector / FlatMap container semantics (including std::map
//    iteration-order parity, which is what keeps wire formats stable);
//  - the canonical strided-lane reduction order, checked against an
//    independent reimplementation of the documented algorithm;
//  - the forced-dispatch matrix: every variant the host supports
//    (scalar / SSE2 / AVX2) must produce bit-identical results for every
//    kernel, including tails and the n == 0 edge cases;
//  - algo-level properties: identical seeded delta streams driven through
//    the four vertex programs under the scalar and each SIMD variant must
//    yield byte-identical serialized states and emitted updates.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "algos/kmeans.h"
#include "algos/pagerank.h"
#include "algos/sgd.h"
#include "algos/sssp.h"
#include "kernel/flat_map.h"
#include "kernel/kernels.h"
#include "kernel/small_vector.h"
#include "runtime/substrate.h"

namespace tornado {
namespace {

// ---------------------------------------------------------------------------
// SmallVector
// ---------------------------------------------------------------------------

TEST(SmallVectorTest, InlineThenHeapGrowth) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 20; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(v[i], i);
  v.pop_back();
  EXPECT_EQ(v.size(), 19u);
}

TEST(SmallVectorTest, InsertAndEraseKeepOrder) {
  SmallVector<int, 2> v = {1, 3, 5};
  v.insert(v.begin() + 1, 2);
  v.insert(v.begin() + 3, 4);
  ASSERT_EQ(v.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[i], i + 1);
  v.erase(v.begin() + 2);
  EXPECT_EQ(v, (SmallVector<int, 2>{1, 2, 4, 5}));
}

TEST(SmallVectorTest, CopyMoveAndEquality) {
  SmallVector<std::string, 2> a = {"x", "y", "z"};
  SmallVector<std::string, 2> b = a;  // copy while heap-backed
  EXPECT_EQ(a, b);
  SmallVector<std::string, 2> c = std::move(a);
  EXPECT_EQ(c, b);
  SmallVector<std::string, 2> inline_only = {"p"};
  SmallVector<std::string, 2> d = std::move(inline_only);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], "p");
}

// ---------------------------------------------------------------------------
// FlatMap
// ---------------------------------------------------------------------------

TEST(FlatMapTest, MirrorsStdMapUnderRandomOps) {
  SubstrateRng substrate(2026);
  Rng rng = substrate.MakeRng(0x1);
  FlatMap<uint64_t, double, 4> flat;
  std::map<uint64_t, double> reference;
  for (int op = 0; op < 2000; ++op) {
    const uint64_t k = rng.NextUint64(64);
    switch (rng.NextUint64(3)) {
      case 0: {
        const double v = rng.NextDouble(-1.0, 1.0);
        flat[k] = v;
        reference[k] = v;
        break;
      }
      case 1: {
        auto [it, inserted] = flat.emplace(k, 0.5);
        auto [rit, rinserted] = reference.emplace(k, 0.5);
        EXPECT_EQ(inserted, rinserted);
        EXPECT_EQ(it->second, rit->second);
        break;
      }
      default:
        EXPECT_EQ(flat.erase(k), reference.erase(k));
        break;
    }
  }
  ASSERT_EQ(flat.size(), reference.size());
  // Iteration order — the wire-format guarantee — must match std::map's.
  auto rit = reference.begin();
  for (const auto& [k, v] : flat) {
    EXPECT_EQ(k, rit->first);
    EXPECT_EQ(v, rit->second);
    ++rit;
  }
}

TEST(FlatMapTest, LookupEraseAndIndexAccess) {
  FlatMap<uint32_t, int, 2> m;
  m[30] = 3;
  m[10] = 1;
  m[20] = 2;
  EXPECT_EQ(m.key_at(0), 10u);
  EXPECT_EQ(m.at_index(2), 3);
  EXPECT_EQ(m.at(20), 2);
  EXPECT_TRUE(m.contains(10));
  auto it = m.find(20);
  ASSERT_NE(it, m.end());
  it = m.erase(it);
  EXPECT_EQ(it->first, 30u);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_FALSE(m.contains(20));
  EXPECT_EQ(m.erase(99u), 0u);
}

// ---------------------------------------------------------------------------
// Canonical reduction order
// ---------------------------------------------------------------------------

// Independent reimplementation of the documented canonical order (eight
// strided lanes, in-order tail fold, fixed combine tree) — the kernels
// must match this exactly at every dispatch level.
double ReferenceCanonicalSum(const std::vector<double>& x) {
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t i = 0;
  for (; i + 8 <= x.size(); i += 8) {
    for (size_t j = 0; j < 8; ++j) lanes[j] += x[i + j];
  }
  for (size_t j = 0; i < x.size(); ++i, ++j) lanes[j] += x[i];
  const double a = lanes[0] + lanes[4];
  const double b = lanes[2] + lanes[6];
  const double c = lanes[1] + lanes[5];
  const double d = lanes[3] + lanes[7];
  return (a + b) + (c + d);
}

std::vector<double> RandomVec(Rng* rng, size_t n) {
  std::vector<double> x(n);
  for (double& v : x) v = rng->NextDouble(-1.0, 1.0);
  return x;
}

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(KernelReductionTest, SumMatchesCanonicalReference) {
  SubstrateRng substrate(2026);
  Rng rng = substrate.MakeRng(0x2);
  for (const size_t n : {0, 1, 3, 7, 8, 9, 16, 31, 64, 67, 1000}) {
    const std::vector<double> x = RandomVec(&rng, n);
    EXPECT_TRUE(BitEqual(kernel::Kernels().sum(x.data(), n),
                         ReferenceCanonicalSum(x)))
        << "n=" << n;
  }
}

TEST(KernelReductionTest, MinOfEmptyIsInfinityAndHandlesTails) {
  EXPECT_EQ(kernel::Kernels().min(nullptr, 0),
            std::numeric_limits<double>::infinity());
  SubstrateRng substrate(2026);
  Rng rng = substrate.MakeRng(0x3);
  for (const size_t n : {1, 5, 8, 13, 64, 99}) {
    const std::vector<double> x = RandomVec(&rng, n);
    EXPECT_EQ(kernel::Kernels().min(x.data(), n),
              *std::min_element(x.begin(), x.end()))
        << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Forced-dispatch matrix
// ---------------------------------------------------------------------------

struct KernelSnapshot {
  double sum, min, dot, sqdist;
  std::vector<double> add, axpy, scale_div, sgd;

  bool operator==(const KernelSnapshot& o) const {
    return BitEqual(sum, o.sum) && BitEqual(min, o.min) &&
           BitEqual(dot, o.dot) && BitEqual(sqdist, o.sqdist) &&
           std::memcmp(add.data(), o.add.data(),
                       add.size() * sizeof(double)) == 0 &&
           std::memcmp(axpy.data(), o.axpy.data(),
                       axpy.size() * sizeof(double)) == 0 &&
           std::memcmp(scale_div.data(), o.scale_div.data(),
                       scale_div.size() * sizeof(double)) == 0 &&
           std::memcmp(sgd.data(), o.sgd.data(),
                       sgd.size() * sizeof(double)) == 0;
  }
};

KernelSnapshot RunAllKernels(const std::vector<double>& x,
                             const std::vector<double>& y) {
  const kernel::KernelOps& ops = kernel::Kernels();
  const size_t n = x.size();
  KernelSnapshot s;
  s.sum = ops.sum(x.data(), n);
  s.min = ops.min(x.data(), n);
  s.dot = ops.dot(x.data(), y.data(), n);
  s.sqdist = ops.sqdist(x.data(), y.data(), n);
  s.add = y;
  ops.add(s.add.data(), x.data(), n);
  s.axpy = y;
  ops.axpy(s.axpy.data(), -1.5, x.data(), n);
  s.scale_div.assign(n, 0.0);
  ops.scale_div(s.scale_div.data(), x.data(), 3.0, n);
  s.sgd = y;
  ops.sgd_step(s.sgd.data(), x.data(), 64.0, 0.1, 1e-4, n);
  return s;
}

TEST(KernelDispatchTest, ScalarAlwaysSupported) {
  const auto variants = kernel::SupportedKernelVariants();
  ASSERT_FALSE(variants.empty());
  EXPECT_EQ(variants.front(), kernel::KernelVariant::kScalar);
}

TEST(KernelDispatchTest, EverySupportedVariantIsBitIdentical) {
  SubstrateRng substrate(2026);
  Rng rng = substrate.MakeRng(0x4);
  for (const size_t n : {0, 1, 7, 8, 9, 24, 31, 256, 1001}) {
    const std::vector<double> x = RandomVec(&rng, n);
    const std::vector<double> y = RandomVec(&rng, n);
    ASSERT_TRUE(kernel::SetKernelVariant(kernel::KernelVariant::kScalar));
    const KernelSnapshot reference = RunAllKernels(x, y);
    for (const kernel::KernelVariant v : kernel::SupportedKernelVariants()) {
      ASSERT_TRUE(kernel::SetKernelVariant(v));
      EXPECT_TRUE(RunAllKernels(x, y) == reference)
          << "variant " << kernel::KernelVariantName(v) << " n=" << n;
    }
  }
  kernel::ResetKernelVariant();
}

TEST(KernelDispatchTest, ForceScalarEnvOverride) {
  ::setenv("TORNADO_FORCE_SCALAR", "1", 1);
  kernel::ResetKernelVariant();
  EXPECT_EQ(kernel::ActiveKernelVariant(), kernel::KernelVariant::kScalar);
  ::unsetenv("TORNADO_FORCE_SCALAR");
  kernel::ResetKernelVariant();
}

TEST(KernelDispatchTest, VariantEnvOverrideWinsAndFallsBackOnGarbage) {
  ::setenv("TORNADO_KERNEL_VARIANT", "scalar", 1);
  kernel::ResetKernelVariant();
  EXPECT_EQ(kernel::ActiveKernelVariant(), kernel::KernelVariant::kScalar);
  ::setenv("TORNADO_KERNEL_VARIANT", "warp-drive", 1);
  kernel::ResetKernelVariant();  // unknown name: auto-select, no crash
  ::unsetenv("TORNADO_KERNEL_VARIANT");
  kernel::ResetKernelVariant();
  EXPECT_EQ(kernel::ActiveKernelVariant(),
            kernel::SupportedKernelVariants().back());
}

// ---------------------------------------------------------------------------
// Algo-level scalar-vs-SIMD property: identical seeded delta streams must
// produce byte-identical states and emissions under every variant.
// ---------------------------------------------------------------------------

/// A stand-in VertexContext recording emissions (a trimmed copy of the
/// program_unit_test fake; the kernels only see state and emissions).
class TraceContext : public VertexContext {
 public:
  TraceContext(VertexId id, LoopId loop, VertexState* state, uint64_t seed)
      : id_(id), loop_(loop), state_(state), rng_(seed) {}

  VertexId id() const override { return id_; }
  LoopId loop() const override { return loop_; }
  bool is_main_loop() const override { return loop_ == kMainLoop; }
  Iteration iteration() const override { return 0; }
  VertexState* state() override { return state_; }

  void AddTarget(VertexId target) override {
    if (std::find(targets_.begin(), targets_.end(), target) ==
        targets_.end()) {
      targets_.push_back(target);
    }
  }
  void RemoveTarget(VertexId target) override {
    auto it = std::find(targets_.begin(), targets_.end(), target);
    if (it == targets_.end()) return;
    targets_.erase(it);
    retiring_.push_back(target);
  }
  const std::vector<VertexId>& targets() const override { return targets_; }
  const std::vector<VertexId>& retiring_targets() const override {
    return retiring_;
  }
  void EmitToTargets(const VertexUpdate& update) override {
    for (VertexId t : targets_) Record(t, update);
  }
  void EmitTo(VertexId target, const VertexUpdate& update) override {
    Record(target, update);
  }
  void AddCost(double seconds) override { cost_ += seconds; }
  void AddProgress(double delta) override { progress_ += delta; }
  Rng* rng() override { return &rng_; }

  void FinishCommit() { retiring_.clear(); }

  /// Appends the run's observable side effects to `log` — emissions plus
  /// the accumulated cost/progress doubles (also variant-sensitive).
  void Flush(BufferWriter* log) {
    log->PutDouble(cost_);
    log->PutDouble(progress_);
  }

 private:
  void Record(VertexId target, const VertexUpdate& update) {
    emission_log.PutVarint(target);
    emission_log.PutVarint(static_cast<uint64_t>(update.kind));
    emission_log.PutDoubleVec(update.values);
  }

 public:
  BufferWriter emission_log;

 private:
  VertexId id_;
  LoopId loop_;
  VertexState* state_;
  std::vector<VertexId> targets_;
  std::vector<VertexId> retiring_;
  Rng rng_;
  double cost_ = 0.0;
  double progress_ = 0.0;
};

std::vector<uint8_t> TracePageRank(uint64_t seed) {
  PageRankProgram program(0.85, 1e-4);
  auto state = program.CreateState(1);
  TraceContext ctx(1, kMainLoop, state.get(), seed);
  Rng rng(seed);
  for (int round = 0; round < 30; ++round) {
    const uint64_t ops = 1 + rng.NextUint64(5);
    for (uint64_t i = 0; i < ops; ++i) {
      if (rng.NextUint64(4) == 0) {
        EdgeDelta e{1, 2 + rng.NextUint64(8), 1.0, rng.NextUint64(4) != 0};
        program.OnInput(ctx, Delta{e});
      } else {
        VertexUpdate u;
        u.kind = 0;
        u.values = {rng.NextUint64(8) == 0 ? 0.0 : rng.NextDouble(0.0, 2.0)};
        program.OnUpdate(ctx, 100 + rng.NextUint64(12), round, u);
      }
    }
    program.Scatter(ctx);
    ctx.FinishCommit();
  }
  BufferWriter log;
  state->Serialize(&log);
  ctx.Flush(&log);
  std::vector<uint8_t> out = log.Release();
  const auto& em = ctx.emission_log.data();
  out.insert(out.end(), em.begin(), em.end());
  return out;
}

std::vector<uint8_t> TraceSssp(uint64_t seed) {
  SsspProgram program(0);
  auto state = program.CreateState(5);
  TraceContext ctx(5, kMainLoop, state.get(), seed);
  Rng rng(seed);
  for (int round = 0; round < 30; ++round) {
    const uint64_t ops = 1 + rng.NextUint64(5);
    for (uint64_t i = 0; i < ops; ++i) {
      if (rng.NextUint64(4) == 0) {
        EdgeDelta e{5, 20 + rng.NextUint64(6),
                    1.0 + rng.NextDouble(0.0, 5.0), rng.NextUint64(4) != 0};
        program.OnInput(ctx, Delta{e});
      } else {
        VertexUpdate u;
        u.kind = 0;
        u.values = {rng.NextUint64(8) == 0 ? kSsspInfinity
                                           : rng.NextDouble(0.0, 50.0)};
        program.OnUpdate(ctx, 100 + rng.NextUint64(12), round, u);
      }
    }
    program.Scatter(ctx);
    ctx.FinishCommit();
  }
  BufferWriter log;
  state->Serialize(&log);
  ctx.Flush(&log);
  std::vector<uint8_t> out = log.Release();
  const auto& em = ctx.emission_log.data();
  out.insert(out.end(), em.begin(), em.end());
  return out;
}

std::vector<uint8_t> TraceKMeans(uint64_t seed) {
  KMeansOptions options;
  options.num_clusters = 3;
  options.num_shards = 2;
  options.dimensions = 5;
  KMeansProgram program(options);

  auto shard_state = program.CreateState(KMeansShardVertex(0));
  TraceContext shard(KMeansShardVertex(0), kMainLoop, shard_state.get(), seed);
  auto centroid_state = program.CreateState(KMeansCentroidVertex(0));
  TraceContext centroid(KMeansCentroidVertex(0), kMainLoop,
                        centroid_state.get(), seed ^ 1);
  PointDelta marker;
  marker.id = kKMeansInitMarker;
  program.OnInput(centroid, Delta{marker});

  Rng rng(seed);
  for (int round = 0; round < 20; ++round) {
    // Shard side: point churn plus centroid-position broadcasts.
    const uint64_t ops = 1 + rng.NextUint64(4);
    for (uint64_t i = 0; i < ops; ++i) {
      PointDelta p;
      p.id = rng.NextUint64(24);
      p.insert = rng.NextUint64(4) != 0;
      if (p.insert) {
        for (uint32_t d = 0; d < options.dimensions; ++d) {
          p.coords.push_back(rng.NextDouble(0.0, 10.0));
        }
      }
      program.OnInput(shard, Delta{p});
    }
    for (uint32_t k = 0; k < options.num_clusters; ++k) {
      if (rng.NextUint64(3) != 0) continue;
      VertexUpdate u;
      u.kind = 0;  // centroid position broadcast
      for (uint32_t d = 0; d < options.dimensions; ++d) {
        u.values.push_back(rng.NextDouble(0.0, 10.0));
      }
      program.OnUpdate(shard, KMeansCentroidVertex(k), round, u);
    }
    program.Scatter(shard);
    shard.FinishCommit();

    // Centroid side: partial-sum gathers from both shards.
    for (uint32_t s = 0; s < options.num_shards; ++s) {
      if (rng.NextUint64(3) == 0) continue;
      VertexUpdate u;
      u.kind = 1;  // partial sums: [count, sum_0..sum_{d-1}]
      u.values.push_back(static_cast<double>(1 + rng.NextUint64(9)));
      for (uint32_t d = 0; d < options.dimensions; ++d) {
        u.values.push_back(rng.NextDouble(0.0, 100.0));
      }
      program.OnUpdate(centroid, KMeansShardVertex(s), round, u);
    }
    program.Scatter(centroid);
    centroid.FinishCommit();
  }
  BufferWriter log;
  shard_state->Serialize(&log);
  centroid_state->Serialize(&log);
  shard.Flush(&log);
  centroid.Flush(&log);
  std::vector<uint8_t> out = log.Release();
  for (const auto* em : {&shard.emission_log, &centroid.emission_log}) {
    out.insert(out.end(), em->data().begin(), em->data().end());
  }
  return out;
}

std::vector<uint8_t> TraceSgd(uint64_t seed) {
  SgdOptions options;
  options.num_shards = 2;
  options.dimensions = 6;
  SgdProgram program(options);

  auto param_state = program.CreateState(kSgdParamVertex);
  TraceContext param(kSgdParamVertex, kMainLoop, param_state.get(), seed);
  InstanceDelta marker;
  marker.id = kSgdInitMarker;
  program.OnInput(param, Delta{marker});

  auto shard_state = program.CreateState(SgdShardVertex(0));
  TraceContext shard(SgdShardVertex(0), kMainLoop, shard_state.get(),
                     seed ^ 1);

  Rng rng(seed);
  for (int round = 0; round < 20; ++round) {
    // Shard side: instance arrivals plus a model broadcast, then a
    // stochastic gradient scatter (driven by the seeded context rng).
    const uint64_t ops = 1 + rng.NextUint64(4);
    for (uint64_t i = 0; i < ops; ++i) {
      InstanceDelta inst;
      inst.id = rng.NextUint64(1000);
      inst.label = rng.NextUint64(2) == 0 ? -1.0 : 1.0;
      for (uint32_t d = 0; d < options.dimensions; ++d) {
        inst.features.emplace_back(d, rng.NextDouble(-1.0, 1.0));
      }
      program.OnInput(shard, Delta{inst});
    }
    {
      VertexUpdate u;
      u.kind = 0;  // model broadcast
      for (uint32_t d = 0; d < options.dimensions; ++d) {
        u.values.push_back(rng.NextDouble(-0.5, 0.5));
      }
      program.OnUpdate(shard, kSgdParamVertex, round, u);
    }
    program.Scatter(shard);
    shard.FinishCommit();

    // Param side: gradient gathers (the kernel sgd_step) and a scatter.
    for (uint32_t s = 0; s < options.num_shards; ++s) {
      VertexUpdate u;
      u.kind = 1;  // gradient: [count, loss_sum, grad...]
      u.values.push_back(static_cast<double>(1 + rng.NextUint64(15)));
      u.values.push_back(rng.NextDouble(0.0, 3.0));
      for (uint32_t d = 0; d < options.dimensions; ++d) {
        u.values.push_back(rng.NextDouble(-1.0, 1.0));
      }
      program.OnUpdate(param, SgdShardVertex(s), round, u);
    }
    program.Scatter(param);
    param.FinishCommit();
  }
  BufferWriter log;
  param_state->Serialize(&log);
  shard_state->Serialize(&log);
  param.Flush(&log);
  shard.Flush(&log);
  std::vector<uint8_t> out = log.Release();
  for (const auto* em : {&param.emission_log, &shard.emission_log}) {
    out.insert(out.end(), em->data().begin(), em->data().end());
  }
  return out;
}

class AlgoKernelEquivalenceTest : public ::testing::Test {
 protected:
  void TearDown() override { kernel::ResetKernelVariant(); }

  template <typename TraceFn>
  void ExpectBitIdenticalAcrossVariants(TraceFn trace, const char* what) {
    SubstrateRng substrate(2026);
    for (uint64_t run = 0; run < 3; ++run) {
      const uint64_t seed = substrate.StreamSeed(0x8000 + run);
      ASSERT_TRUE(kernel::SetKernelVariant(kernel::KernelVariant::kScalar));
      const std::vector<uint8_t> reference = trace(seed);
      for (const kernel::KernelVariant v :
           kernel::SupportedKernelVariants()) {
        ASSERT_TRUE(kernel::SetKernelVariant(v));
        EXPECT_EQ(trace(seed), reference)
            << what << " diverged under " << kernel::KernelVariantName(v)
            << " (seed " << seed << ")";
      }
    }
  }
};

TEST_F(AlgoKernelEquivalenceTest, PageRank) {
  ExpectBitIdenticalAcrossVariants(&TracePageRank, "pagerank");
}

TEST_F(AlgoKernelEquivalenceTest, Sssp) {
  ExpectBitIdenticalAcrossVariants(&TraceSssp, "sssp");
}

TEST_F(AlgoKernelEquivalenceTest, KMeans) {
  ExpectBitIdenticalAcrossVariants(&TraceKMeans, "kmeans");
}

TEST_F(AlgoKernelEquivalenceTest, Sgd) {
  ExpectBitIdenticalAcrossVariants(&TraceSgd, "sgd");
}

}  // namespace
}  // namespace tornado
