// End-to-end tests for the ScenarioRunner: a healthy scenario completes
// with invariants held and a fixed point; the chaos fixture's scripted
// protocol sabotage trips the invariant gate; timeline actions land at
// their scripted virtual times; and same-seed runs are byte-identical.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/metrics.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "tests/test_util.h"

namespace tornado {
namespace scenario {
namespace {

Scenario LoadFixture(const std::string& name) {
  Scenario scenario;
  std::vector<std::string> errors;
  const std::string path =
      std::string(TORNADO_SCENARIO_FIXTURES) + "/" + name;
  EXPECT_TRUE(LoadScenarioFile(path, &scenario, &errors));
  for (const std::string& e : errors) ADD_FAILURE() << e;
  return scenario;
}

TEST(ScenarioRunnerTest, HealthyScenarioHoldsInvariants) {
  ScenarioRunner runner(LoadFixture("mini_sssp.json"));
  const ScenarioVerdict verdict = runner.Run();
  EXPECT_TRUE(verdict.completed) << verdict.Summary();
  EXPECT_TRUE(verdict.invariants_held) << verdict.Summary();
  EXPECT_TRUE(verdict.fixed_point_reached) << verdict.Summary();
  EXPECT_GT(verdict.query_latency, 0.0);
  EXPECT_EQ(verdict.updates_per_bucket.size(), 10u);
  EXPECT_GT(verdict.counters.at(metric::kUpdatesCommitted), 0);
}

TEST(ScenarioRunnerTest, ChaosCommitRegressionTripsTheGate) {
  ScenarioRunner runner(LoadFixture("chaos_commit_regression.json"));
  const ScenarioVerdict verdict = runner.Run();
  EXPECT_TRUE(verdict.completed) << verdict.Summary();
  ASSERT_FALSE(verdict.invariants_held) << verdict.Summary();
  ASSERT_EQ(verdict.violations.size(), 1u);
  EXPECT_EQ(verdict.violations[0].invariant, "INV-MONO-COMMIT");
}

TEST(ScenarioRunnerTest, SameSeedRunsAreByteIdentical) {
  const Scenario scenario = LoadFixture("mini_sssp.json");
  ScenarioRunner a(scenario);
  ScenarioRunner b(scenario);
  const ScenarioVerdict va = a.Run();
  const ScenarioVerdict vb = b.Run();
  EXPECT_EQ(va.updates_per_bucket, vb.updates_per_bucket);
  EXPECT_EQ(va.counters, vb.counters);
  EXPECT_DOUBLE_EQ(va.query_latency, vb.query_latency);
  EXPECT_DOUBLE_EQ(va.virtual_seconds, vb.virtual_seconds);
}

TEST(ScenarioRunnerTest, CrashRestartActionKillsAndRecovers) {
  Scenario scenario = LoadFixture("mini_sssp.json");
  scenario.drive.wait_for_query = false;
  scenario.drive.sample_count = 30;
  TimelineAction crash;
  crash.kind = TimelineAction::Kind::kCrashRestart;
  crash.at = 0.05;
  crash.node.kind = NodeRef::Kind::kProcessor;
  crash.node.index = 1;
  crash.downtime = 0.2;
  scenario.timeline.push_back(crash);

  ScenarioRunner runner(std::move(scenario));
  const ScenarioVerdict verdict = runner.Run();
  EXPECT_TRUE(verdict.completed) << verdict.Summary();
  EXPECT_TRUE(verdict.invariants_held) << verdict.Summary();
  // The kill fired: the transport saw the node down and retransmitted
  // into it; recovery restarted it within the sampled window.
  EXPECT_TRUE(runner.cluster()->transport().IsAlive(
      runner.cluster()->processor_node(1)));
}

TEST(ScenarioRunnerTest, RateOverrideRestoresConfiguredRateExactly) {
  // set_rate then restore_rate: the run must end back at the JobConfig
  // pacing — verified by comparing against a run that never overrode.
  Scenario base = LoadFixture("mini_sssp.json");
  base.drive.wait_for_query = false;
  base.drive.pause_ingest = false;

  Scenario bursty = base;
  TimelineAction up;
  up.kind = TimelineAction::Kind::kSetRate;
  up.at = 0.03;
  up.rate = 40000.0;
  TimelineAction down;
  down.kind = TimelineAction::Kind::kRestoreRate;
  down.at = 0.03;
  bursty.timeline.push_back(up);
  bursty.timeline.push_back(down);

  ScenarioRunner a(base);
  ScenarioRunner b(std::move(bursty));
  const ScenarioVerdict va = a.Run();
  const ScenarioVerdict vb = b.Run();
  // Override immediately undone at the same boundary: identical runs.
  EXPECT_EQ(va.updates_per_bucket, vb.updates_per_bucket);
  EXPECT_EQ(va.counters, vb.counters);
}

}  // namespace
}  // namespace scenario
}  // namespace tornado
