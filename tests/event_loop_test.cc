// Unit tests for the discrete-event loop: ordering, cancellation, budget.

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_loop.h"
#include "tests/test_util.h"

namespace tornado {
namespace {

TEST(EventLoopTest, FiresInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(0.3, [&]() { order.push_back(3); });
  loop.Schedule(0.1, [&]() { order.push_back(1); });
  loop.Schedule(0.2, [&]() { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(loop.now(), 0.3);
}

TEST(EventLoopTest, SameTimeFiresInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.Schedule(1.0, [&, i]() { order.push_back(i); });
  }
  loop.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoopTest, EventsCanScheduleEvents) {
  EventLoop loop;
  int fired = 0;
  std::function<void()> chain = [&]() {
    ++fired;
    if (fired < 5) loop.Schedule(0.1, chain);
  };
  loop.Schedule(0.1, chain);
  loop.Run();
  EXPECT_EQ(fired, 5);
  EXPECT_NEAR(loop.now(), 0.5, 1e-12);
}

TEST(EventLoopTest, CancelPreventsFiring) {
  EventLoop loop;
  bool fired = false;
  const EventId id = loop.Schedule(0.1, [&]() { fired = true; });
  loop.Cancel(id);
  loop.Run();
  EXPECT_FALSE(fired);
}

TEST(EventLoopTest, CancelUnknownIsNoop) {
  EventLoop loop;
  loop.Cancel(9999);
  EXPECT_EQ(loop.Run(), 0u);
}

TEST(EventLoopTest, RunUntilStopsAtDeadline) {
  EventLoop loop;
  std::vector<double> times;
  for (int i = 1; i <= 10; ++i) {
    loop.Schedule(i * 0.1, [&, i]() { times.push_back(i * 0.1); });
  }
  loop.RunUntil(0.55);
  EXPECT_EQ(times.size(), 5u);
  EXPECT_DOUBLE_EQ(loop.now(), 0.55);
  loop.Run();
  EXPECT_EQ(times.size(), 10u);
}

TEST(EventLoopTest, RunUntilAdvancesClockWhenIdle) {
  EventLoop loop;
  loop.RunUntil(2.0);
  EXPECT_DOUBLE_EQ(loop.now(), 2.0);
}

TEST(EventLoopTest, NegativeDelayClampsToNow) {
  EventLoop loop;
  loop.Schedule(1.0, [&]() {
    bool fired = false;
    loop.Schedule(-5.0, [&]() { fired = true; });
    (void)fired;
  });
  loop.Run();
  EXPECT_DOUBLE_EQ(loop.now(), 1.0);  // the nested event fired at t=1.0
}

TEST(EventLoopTest, EventBudgetStopsRunawayLoops) {
  EventLoop loop;
  loop.set_event_budget(100);
  std::function<void()> forever = [&]() { loop.Schedule(0.01, forever); };
  loop.Schedule(0.01, forever);
  loop.Run();
  EXPECT_TRUE(loop.budget_exhausted());
}

TEST(EventLoopTest, StepFiresExactlyOne) {
  EventLoop loop;
  int fired = 0;
  loop.Schedule(0.1, [&]() { ++fired; });
  loop.Schedule(0.2, [&]() { ++fired; });
  EXPECT_TRUE(loop.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(loop.Step());
  EXPECT_FALSE(loop.Step());
  EXPECT_EQ(fired, 2);
}

TEST(EventLoopTest, PendingCountsUncancelledEvents) {
  EventLoop loop;
  const EventId a = loop.Schedule(0.1, []() {});
  loop.Schedule(0.2, []() {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.Cancel(a);
  EXPECT_EQ(loop.pending(), 1u);
}

}  // namespace
}  // namespace tornado
