// Unit tests for the discrete-event loop: ordering, cancellation, budget.

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_loop.h"
#include "tests/test_util.h"

namespace tornado {
namespace {

TEST(EventLoopTest, FiresInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(0.3, [&]() { order.push_back(3); });
  loop.Schedule(0.1, [&]() { order.push_back(1); });
  loop.Schedule(0.2, [&]() { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(loop.now(), 0.3);
}

TEST(EventLoopTest, SameTimeFiresInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.Schedule(1.0, [&, i]() { order.push_back(i); });
  }
  loop.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoopTest, EventsCanScheduleEvents) {
  EventLoop loop;
  int fired = 0;
  std::function<void()> chain = [&]() {
    ++fired;
    if (fired < 5) loop.Schedule(0.1, chain);
  };
  loop.Schedule(0.1, chain);
  loop.Run();
  EXPECT_EQ(fired, 5);
  EXPECT_NEAR(loop.now(), 0.5, 1e-12);
}

TEST(EventLoopTest, CancelPreventsFiring) {
  EventLoop loop;
  bool fired = false;
  const EventId id = loop.Schedule(0.1, [&]() { fired = true; });
  loop.Cancel(id);
  loop.Run();
  EXPECT_FALSE(fired);
}

TEST(EventLoopTest, CancelUnknownIsNoop) {
  EventLoop loop;
  loop.Cancel(9999);
  EXPECT_EQ(loop.Run(), 0u);
}

TEST(EventLoopTest, RunUntilStopsAtDeadline) {
  EventLoop loop;
  std::vector<double> times;
  for (int i = 1; i <= 10; ++i) {
    loop.Schedule(i * 0.1, [&, i]() { times.push_back(i * 0.1); });
  }
  loop.RunUntil(0.55);
  EXPECT_EQ(times.size(), 5u);
  EXPECT_DOUBLE_EQ(loop.now(), 0.55);
  loop.Run();
  EXPECT_EQ(times.size(), 10u);
}

TEST(EventLoopTest, RunUntilAdvancesClockWhenIdle) {
  EventLoop loop;
  loop.RunUntil(2.0);
  EXPECT_DOUBLE_EQ(loop.now(), 2.0);
}

TEST(EventLoopTest, NegativeDelayClampsToNow) {
  EventLoop loop;
  loop.Schedule(1.0, [&]() {
    bool fired = false;
    loop.Schedule(-5.0, [&]() { fired = true; });
    (void)fired;
  });
  loop.Run();
  EXPECT_DOUBLE_EQ(loop.now(), 1.0);  // the nested event fired at t=1.0
}

TEST(EventLoopTest, EventBudgetStopsRunawayLoops) {
  EventLoop loop;
  loop.set_event_budget(100);
  std::function<void()> forever = [&]() { loop.Schedule(0.01, forever); };
  loop.Schedule(0.01, forever);
  loop.Run();
  EXPECT_TRUE(loop.budget_exhausted());
}

TEST(EventLoopTest, StepFiresExactlyOne) {
  EventLoop loop;
  int fired = 0;
  loop.Schedule(0.1, [&]() { ++fired; });
  loop.Schedule(0.2, [&]() { ++fired; });
  EXPECT_TRUE(loop.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(loop.Step());
  EXPECT_FALSE(loop.Step());
  EXPECT_EQ(fired, 2);
}

TEST(EventLoopTest, PendingCountsUncancelledEvents) {
  EventLoop loop;
  const EventId a = loop.Schedule(0.1, []() {});
  loop.Schedule(0.2, []() {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.Cancel(a);
  EXPECT_EQ(loop.pending(), 1u);
}

// --- Cancel / tombstone semantics ------------------------------------------

TEST(EventLoopCancelTest, CancelThenRunUntilSkipsTombstone) {
  EventLoop loop;
  std::vector<int> order;
  const EventId a = loop.Schedule(0.1, [&]() { order.push_back(1); });
  loop.Schedule(0.2, [&]() { order.push_back(2); });
  loop.Cancel(a);
  // The tombstone sits at the head of the queue; RunUntil must drain it
  // without firing and still run the live event behind it.
  EXPECT_EQ(loop.RunUntil(0.5), 1u);
  EXPECT_EQ(order, (std::vector<int>{2}));
  EXPECT_DOUBLE_EQ(loop.now(), 0.5);
  EXPECT_TRUE(loop.empty());
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoopCancelTest, CancelAfterFireIsNoop) {
  EventLoop loop;
  int fired = 0;
  const EventId a = loop.Schedule(0.1, [&]() { ++fired; });
  loop.Schedule(0.2, [&]() { ++fired; });
  EXPECT_TRUE(loop.Step());  // fires `a`
  EXPECT_EQ(fired, 1);
  loop.Cancel(a);  // id already consumed: must not tombstone anything
  EXPECT_EQ(loop.pending(), 1u);
  EXPECT_FALSE(loop.empty());
  loop.Run();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoopCancelTest, DoubleCancelCountsOnce) {
  EventLoop loop;
  const EventId a = loop.Schedule(0.1, []() {});
  loop.Schedule(0.2, []() {});
  loop.Cancel(a);
  loop.Cancel(a);  // second cancel must not double-tombstone
  EXPECT_EQ(loop.pending(), 1u);
  EXPECT_FALSE(loop.empty());
  EXPECT_EQ(loop.Run(), 1u);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoopCancelTest, EmptyWithOnlyTombstonesInQueue) {
  EventLoop loop;
  const EventId a = loop.Schedule(0.1, []() {});
  const EventId b = loop.Schedule(0.2, []() {});
  loop.Cancel(a);
  loop.Cancel(b);
  // Queue physically holds two entries, both tombstoned.
  EXPECT_TRUE(loop.empty());
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_EQ(loop.Run(), 0u);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoopCancelTest, CancelledSelfRescheduleStopsTimerChain) {
  // The periodic-timer idiom: a callback reschedules itself; cancelling
  // the live id stops the chain.
  EventLoop loop;
  int ticks = 0;
  EventId id = 0;
  std::function<void()> tick = [&]() {
    ++ticks;
    id = loop.Schedule(0.1, tick);
  };
  id = loop.Schedule(0.1, tick);
  loop.RunUntil(0.35);
  EXPECT_EQ(ticks, 3);
  loop.Cancel(id);
  loop.RunUntil(1.0);
  EXPECT_EQ(ticks, 3);
  EXPECT_TRUE(loop.empty());
}

// --- RunUntil vs. the event budget -----------------------------------------

TEST(EventLoopBudgetTest, RunUntilDoesNotAdvancePastUndeliveredEvents) {
  EventLoop loop;
  std::vector<double> fired_at;
  for (int i = 1; i <= 10; ++i) {
    loop.Schedule(i * 0.1, [&, i]() { fired_at.push_back(i * 0.1); });
  }
  loop.set_event_budget(4);
  EXPECT_EQ(loop.RunUntil(2.0), 4u);
  ASSERT_EQ(fired_at.size(), 4u);
  // Six events (t=0.5..1.0) are still due before the deadline; the clock
  // must stay at the last fired event, not jump to 2.0 and leave them
  // scheduled "in the past".
  EXPECT_DOUBLE_EQ(loop.now(), 0.4);
  EXPECT_EQ(loop.pending(), 6u);
}

TEST(EventLoopBudgetTest, RunUntilStillReachesDeadlineWhenAllDueFired) {
  EventLoop loop;
  loop.Schedule(0.1, []() {});
  loop.set_event_budget(4);
  EXPECT_EQ(loop.RunUntil(2.0), 1u);
  // Budget not exhausted and nothing left before the deadline: the idle
  // clock advance is still correct.
  EXPECT_DOUBLE_EQ(loop.now(), 2.0);
}

TEST(EventLoopBudgetTest, ExhaustedBudgetWithDrainedQueueStillReachesDeadline) {
  EventLoop loop;
  for (int i = 1; i <= 3; ++i) loop.Schedule(i * 0.1, []() {});
  loop.set_event_budget(3);
  EXPECT_EQ(loop.RunUntil(1.0), 3u);
  EXPECT_TRUE(loop.budget_exhausted());
  // Every scheduled event was delivered, so nothing can land in the past:
  // the idle clock advance to the deadline is safe even on a spent budget.
  EXPECT_DOUBLE_EQ(loop.now(), 1.0);
}


// ---------------------------------------------------------------------------
// Slot-slab behavior: eager reclamation, free-list reuse, heap compaction.
// ---------------------------------------------------------------------------

TEST(EventLoopSlabTest, MassCancelReclaimsSlotsAndCompactsHeap) {
  EventLoop loop;
  constexpr size_t kN = 1000000;
  std::vector<EventId> ids;
  ids.reserve(kN);
  for (size_t i = 0; i < kN; ++i) {
    ids.push_back(loop.Schedule(1e9 + static_cast<double>(i), []() {}));
  }
  EXPECT_EQ(loop.pending(), kN);
  const size_t cap = loop.slot_capacity();
  EXPECT_EQ(cap, kN);

  for (EventId id : ids) loop.Cancel(id);
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_TRUE(loop.empty());
  // Far-future tombstones must not sit in the heap until their fire time:
  // compaction sweeps them once they dominate.
  EXPECT_LT(loop.heap_size(), 128u);

  // Free-list reuse: a second full wave fits in the reclaimed slots
  // without growing the slab.
  for (size_t i = 0; i < kN; ++i) loop.Schedule(1.0, []() {});
  EXPECT_EQ(loop.slot_capacity(), cap);
  EXPECT_EQ(loop.Run(), kN);
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoopSlabTest, RearmChurnIsBoundedToTwoSlots) {
  // The retransmit-timer pattern: schedule the replacement, cancel the old
  // one. Eager reclamation keeps the slab at two slots no matter how long
  // the churn runs.
  EventLoop loop;
  EventId prev = 0;
  for (int i = 0; i < 10000; ++i) {
    const EventId id =
        loop.Schedule(1e6 + static_cast<double>(i), []() {});
    if (prev != 0) loop.Cancel(prev);
    prev = id;
  }
  loop.Cancel(prev);
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_LE(loop.slot_capacity(), 2u);
}

TEST(EventLoopSlabTest, StaleIdCannotCancelRecycledSlot) {
  EventLoop loop;
  bool fired = false;
  const EventId a = loop.Schedule(0.1, []() {});
  loop.Cancel(a);
  // The next schedule reuses a's slot; the stale id must not reach it.
  const EventId b = loop.Schedule(0.2, [&]() { fired = true; });
  EXPECT_NE(a, b);
  loop.Cancel(a);
  loop.Run();
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace tornado
